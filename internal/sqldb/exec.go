package sqldb

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"kwagg/internal/relation"
	"kwagg/internal/sqlast"
)

// Result is the table produced by executing a query.
type Result struct {
	Columns []string
	Rows    []relation.Tuple
}

// String renders the result as an aligned text table (for CLIs and examples).
func (r *Result) String() string {
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		cells[i] = make([]string, len(row))
		for j, v := range row {
			cells[i][j] = relation.Format(v)
			if len(cells[i][j]) > widths[j] {
				widths[j] = len(cells[i][j])
			}
		}
	}
	var b strings.Builder
	writeRow := func(vals []string) {
		for j, v := range vals {
			if j > 0 {
				b.WriteString("  ")
			}
			b.WriteString(v)
			for k := len(v); k < widths[j]; k++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(r.Columns)
	for _, row := range cells {
		writeRow(row)
	}
	return b.String()
}

// SortRows orders the rows canonically (by formatted values); useful for
// deterministic comparison in tests and experiment reports.
func (r *Result) SortRows() {
	sort.SliceStable(r.Rows, func(i, j int) bool {
		for k := range r.Rows[i] {
			if c := relation.Compare(r.Rows[i][k], r.Rows[j][k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
}

// ExecSQL parses and executes a SQL statement against db.
func ExecSQL(db *relation.Database, sql string) (*Result, error) {
	q, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return Exec(db, q)
}

// Exec evaluates the query against db. Equality predicates on base-table
// scans are answered from the per-table value index (built eagerly when the
// database is frozen at open time, lazily otherwise), and on frozen databases
// the hash paths — joins, GROUP BY, DISTINCT, equality filters — run over the
// tables' dictionary encoding (dense uint32 IDs instead of formatted
// strings), decoding back to values only at projection time.
func Exec(db *relation.Database, q *sqlast.Query) (*Result, error) {
	e := &executor{db: db}
	return e.query(q)
}

// ExecContext is Exec honoring cancellation: evaluation checks the context
// between operator phases and every rowCheckInterval rows inside scan, filter
// and join loops, returning the context's error mid-statement instead of
// running a doomed query to completion. A context that cannot be cancelled
// (Background) costs nothing: the checks are compiled out by a nil test.
func ExecContext(ctx context.Context, db *relation.Database, q *sqlast.Query) (*Result, error) {
	e := &executor{db: db}
	if ctx != nil && ctx.Done() != nil {
		e.ctx = ctx
	}
	return e.query(q)
}

// ExecNoIndex evaluates the query with the value-index fast path and the
// dictionary-encoded kernels disabled, scanning every filter and hashing
// formatted values. It exists as a reference path for differential tests
// (accelerated execution must be row-for-row identical) and benchmarks.
func ExecNoIndex(db *relation.Database, q *sqlast.Query) (*Result, error) {
	e := &executor{db: db, noIndex: true}
	return e.query(q)
}

// ExecSharded evaluates the query with the batch kernels driven
// shard-parallel by up to workers goroutines (see parallel.go). Answers are
// row- and byte-identical to Exec; workers <= 1 is exactly Exec.
func ExecSharded(db *relation.Database, q *sqlast.Query, workers int) (*Result, error) {
	e := &executor{db: db, par: workers}
	return e.query(q)
}

// ExecEncoded evaluates the query with the batch kernels disabled but the
// dictionary-encoded integer-at-a-time kernels (and the value index) on —
// the PR4 execution mode. It is the middle rung of the three-way
// differential ladder (batch vs encoded vs reference) and the baseline the
// batch kernels are benchmarked against.
func ExecEncoded(db *relation.Database, q *sqlast.Query) (*Result, error) {
	e := &executor{db: db, noBatch: true}
	return e.query(q)
}

type boundCol struct {
	table string // alias the column is reachable under
	name  string
}

type rowset struct {
	cols []boundCol
	rows []relation.Tuple
	// base is the table this rowset scans when rows is exactly base.Tuples
	// (no filter or join applied yet); equality filters on such a pristine
	// scan can use the table's value index. nil otherwise.
	base *relation.Table
	// Dictionary encoding carried alongside rows when the source tables are
	// frozen: dicts[i] is column i's dictionary (a nil entry marks an
	// unencoded column, e.g. an aggregate output; a nil slice means the
	// rowset carries no encoding at all) and enc holds the IDs row-major
	// with stride len(cols). Cells of unencoded columns are meaningless
	// zeros. Invariant: enc is maintained exactly when dicts is non-nil.
	dicts []*relation.Dict
	enc   []uint32
	// key is the canonical subplan identity used by the memo; empty when
	// the rowset is not a cacheable fragment or no memo is attached.
	key string
}

// encoded reports whether column i carries dictionary IDs in enc.
func (rs *rowset) encoded(i int) bool { return i < len(rs.dicts) && rs.dicts[i] != nil }

// resolve returns the position of c in the rowset, or -1. Unqualified names
// must be unambiguous.
func (rs *rowset) resolve(c sqlast.Col) (int, error) {
	found := -1
	for i, bc := range rs.cols {
		if !strings.EqualFold(bc.name, c.Column) {
			continue
		}
		if c.Table != "" && !strings.EqualFold(bc.table, c.Table) {
			continue
		}
		if found >= 0 {
			return -1, fmt.Errorf("sqldb: ambiguous column reference %s", c)
		}
		found = i
	}
	if found < 0 {
		return -1, fmt.Errorf("sqldb: unknown column %s", c)
	}
	return found, nil
}

func (rs *rowset) has(c sqlast.Col) bool {
	n := 0
	for _, bc := range rs.cols {
		if strings.EqualFold(bc.name, c.Column) &&
			(c.Table == "" || strings.EqualFold(bc.table, c.Table)) {
			n++
		}
	}
	return n == 1
}

// appendHashKey appends an injective hash key for the given columns of row
// ri: a fixed 4-byte dictionary ID for encoded columns, a length-prefixed
// Format rendering otherwise. Two rows of the same rowset get equal keys
// exactly when every selected column pair formats equally — unlike the old
// "\x1f"-joined keys, values containing the separator cannot alias.
func (rs *rowset) appendHashKey(buf []byte, ri int, idx []int) []byte {
	st := len(rs.cols)
	for _, i := range idx {
		if rs.encoded(i) {
			buf = appendLE32(buf, rs.enc[ri*st+i])
		} else {
			buf = appendFormatted(buf, rs.rows[ri][i])
		}
	}
	return buf
}

func appendLE32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// putLE32 overwrites the four bytes at b[off:] with v, little-endian.
func putLE32(b []byte, off int, v uint32) {
	b[off], b[off+1], b[off+2], b[off+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

// appendFormatted appends the length-prefixed Format rendering of v without
// materializing a string per row: a placeholder length is appended first and
// backfilled once the value's bytes are in place. The output is
// byte-identical to appendLE32(buf, len(Format(v))) + Format(v) bytes
// (pinned by TestAppendFormattedKeyBytes).
func appendFormatted(buf []byte, v relation.Value) []byte {
	n0 := len(buf)
	buf = appendLE32(buf, 0)
	buf = relation.AppendFormat(buf, v)
	putLE32(buf, n0, uint32(len(buf)-n0-4))
	return buf
}

type executor struct {
	db      *relation.Database
	noIndex bool            // disable index + encoded fast paths (test hook)
	noBatch bool            // disable batch kernels: integer-at-a-time reference
	ctx     context.Context // non-nil only when cancellable (see ExecContext)
	ops     uint            // row-touch counter for amortized ctx checks
	memo    *Memo           // shared-subplan cache; nil = no memoization

	// Shard-parallel configuration (see parallel.go): the worker target for
	// the batch-kernel drivers (<=1 runs everything sequentially) and the
	// rows-per-shard override (0 = relation.ShardRows; rounded up to whole
	// blocks).
	par       int
	shardRows int

	memoHits   int
	memoMisses int
	shardRuns  int // kernel passes that actually ran shard-parallel

	// Batch-kernel scratch, reused across operators of one statement (the
	// executor is single-goroutine and never reentrant within an operator):
	// the whole-input selection bitset, the packed per-block selection
	// indexes, and the per-block translated probe IDs.
	selBits []uint64
	selIdx  []int32
	pids    []uint32
}

// rowCheckInterval bounds how many rows a loop may touch between context
// checks; a power of two so the amortized check is a mask, not a division.
const rowCheckInterval = 1024

// step is called once per row inside the evaluation loops. With no
// cancellable context it is a single nil comparison; otherwise it polls
// ctx.Err() every rowCheckInterval rows.
func (e *executor) step() error {
	if e.ctx == nil {
		return nil
	}
	e.ops++
	if e.ops&(rowCheckInterval-1) != 0 {
		return nil
	}
	return e.ctx.Err()
}

// checkpoint polls cancellation at operator boundaries (per source, join,
// filter and projection phase), so even tiny statements notice a dead
// context promptly.
func (e *executor) checkpoint() error {
	if e.ctx == nil {
		return nil
	}
	return e.ctx.Err()
}

func (e *executor) query(q *sqlast.Query) (*Result, error) {
	rs, err := e.queryRowset(q, true)
	if err != nil {
		return nil, err
	}
	cols := make([]string, len(rs.cols))
	for i, bc := range rs.cols {
		cols[i] = bc.name
	}
	return &Result{Columns: cols, Rows: rs.rows}, nil
}

// queryRowset evaluates q into a rowset. topLevel marks the outermost query
// of a statement: its projected rowset becomes the Result directly, so
// building an output encoding would be wasted work unless DISTINCT still
// needs hash keys.
func (e *executor) queryRowset(q *sqlast.Query, topLevel bool) (*rowset, error) {
	if len(q.From) == 0 {
		return nil, fmt.Errorf("sqldb: query has no FROM clause")
	}
	sources := make([]*rowset, len(q.From))
	for i, tr := range q.From {
		if err := e.checkpoint(); err != nil {
			return nil, err
		}
		rs, err := e.source(tr)
		if err != nil {
			return nil, err
		}
		sources[i] = rs
	}

	consumed := make([]bool, len(q.Where))

	// Push single-source filters down before joining. All predicates local
	// to one source are applied as a unit so the filtered rowset can be
	// memoized under its canonical scan-plus-filters key.
	for si, rs := range sources {
		var preds []sqlast.Pred
		for pi, p := range q.Where {
			if consumed[pi] || !localPred(rs, p) {
				continue
			}
			preds = append(preds, p)
			consumed[pi] = true
		}
		if len(preds) == 0 {
			continue
		}
		key := ""
		if rs.key != "" {
			var b strings.Builder
			b.WriteString(rs.key)
			for _, p := range preds {
				b.WriteString("|f:")
				b.WriteString(p.String())
			}
			key = b.String()
		}
		filtered, err := e.memoized(key, func() (*rowset, error) {
			cur := rs
			for _, p := range preds {
				next, err := e.filterRows(cur, p)
				if err != nil {
					return nil, err
				}
				cur = next
			}
			return cur, nil
		})
		if err != nil {
			return nil, err
		}
		sources[si] = filtered
	}

	// Greedy join ordering: start from the smallest source, then repeatedly
	// join the smallest source connected to the accumulated result by a join
	// predicate (falling back to the smallest remaining source when nothing
	// connects — a cross join). This keeps intermediate results small
	// without a full optimizer and is deterministic (ties break on FROM
	// position).
	remaining := make([]int, 0, len(sources)-1)
	start := 0
	for i := 1; i < len(sources); i++ {
		if len(sources[i].rows) < len(sources[start].rows) {
			start = i
		}
	}
	for i := range sources {
		if i != start {
			remaining = append(remaining, i)
		}
	}
	connects := func(acc *rowset, src *rowset) bool {
		for pi, p := range q.Where {
			if consumed[pi] {
				continue
			}
			jp, ok := p.(sqlast.JoinPred)
			if !ok {
				continue
			}
			if (acc.has(jp.Left) && src.has(jp.Right)) || (acc.has(jp.Right) && src.has(jp.Left)) {
				return true
			}
		}
		return false
	}
	acc := sources[start]
	for len(remaining) > 0 {
		pick, pickPos := -1, -1
		for pos, idx := range remaining {
			src := sources[idx]
			if !connects(acc, src) {
				continue
			}
			if pick < 0 || len(src.rows) < len(sources[pick].rows) {
				pick, pickPos = idx, pos
			}
		}
		if pick < 0 {
			for pos, idx := range remaining {
				if pick < 0 || len(sources[idx].rows) < len(sources[pick].rows) {
					pick, pickPos = idx, pos
				}
			}
		}
		src := sources[pick]
		remaining = append(remaining[:pickPos], remaining[pickPos+1:]...)
		if err := e.checkpoint(); err != nil {
			return nil, err
		}

		var eqs []sqlast.JoinPred
		for pi, p := range q.Where {
			if consumed[pi] {
				continue
			}
			jp, ok := p.(sqlast.JoinPred)
			if !ok {
				continue
			}
			l, r := jp.Left, jp.Right
			switch {
			case acc.has(l) && src.has(r):
				eqs = append(eqs, jp)
				consumed[pi] = true
			case acc.has(r) && src.has(l):
				eqs = append(eqs, sqlast.JoinPred{Left: r, Right: l})
				consumed[pi] = true
			}
		}
		key := ""
		if acc.key != "" && src.key != "" {
			ons := make([]string, len(eqs))
			for k, jp := range eqs {
				ons[k] = jp.String()
			}
			sort.Strings(ons)
			key = "join(" + acc.key + ")+(" + src.key + ")|on:" + strings.Join(ons, ",")
		}
		joined, err := e.memoized(key, func() (*rowset, error) {
			return e.join(acc, src, eqs)
		})
		if err != nil {
			return nil, err
		}
		acc = joined
	}

	// Remaining predicates (including join predicates that closed a cycle).
	for pi, p := range q.Where {
		if consumed[pi] {
			continue
		}
		filtered, err := e.filterRows(acc, p)
		if err != nil {
			return nil, err
		}
		acc = filtered
	}

	if err := e.checkpoint(); err != nil {
		return nil, err
	}
	res, err := e.project(acc, q, !topLevel || q.Distinct)
	if err != nil {
		return nil, err
	}
	if q.Distinct {
		res = distinctRowset(res)
	}
	if len(q.OrderBy) > 0 {
		if err := orderByRowset(res, q.OrderBy); err != nil {
			return nil, err
		}
	}
	if q.Limit > 0 && len(res.rows) > q.Limit {
		res.rows = res.rows[:q.Limit]
		if res.enc != nil {
			res.enc = res.enc[:q.Limit*len(res.cols)]
		}
	}
	return res, nil
}

func (e *executor) source(tr sqlast.TableRef) (*rowset, error) {
	alias := tr.Alias
	if tr.Subquery != nil {
		key := ""
		if e.memo != nil {
			key = "sub|" + tr.Subquery.String()
		}
		sub, err := e.memoized(key, func() (*rowset, error) {
			return e.queryRowset(tr.Subquery, false)
		})
		if err != nil {
			return nil, err
		}
		// Rebind the subquery's output columns under the FROM alias on a
		// fresh rowset: the underlying rows may be shared through the memo
		// and must never be mutated.
		rs := &rowset{rows: sub.rows, dicts: sub.dicts, enc: sub.enc}
		rs.cols = make([]boundCol, len(sub.cols))
		for i, bc := range sub.cols {
			rs.cols[i] = boundCol{table: alias, name: bc.name}
		}
		if key != "" {
			rs.key = key + "|as:" + strings.ToLower(alias)
		}
		return rs, nil
	}
	t := e.db.Table(tr.Name)
	if t == nil {
		return nil, fmt.Errorf("sqldb: unknown relation %q", tr.Name)
	}
	rs := &rowset{rows: t.Tuples, base: t}
	if !e.noIndex {
		if dicts, enc, ok := t.Encoding(); ok {
			rs.dicts, rs.enc = dicts, enc
		}
	}
	if e.memo != nil {
		rs.key = "scan|" + strings.ToLower(tr.Name) + "|" + strings.ToLower(alias)
	}
	for _, a := range t.Schema.Attributes {
		rs.cols = append(rs.cols, boundCol{table: alias, name: a.Name})
	}
	return rs, nil
}

// localPred reports whether every column in p is resolvable in rs alone.
func localPred(rs *rowset, p sqlast.Pred) bool {
	switch pp := p.(type) {
	case sqlast.ComparePred:
		return rs.has(pp.Col)
	case sqlast.ContainsPred:
		return rs.has(pp.Col)
	case sqlast.ColComparePred:
		return rs.has(pp.Left) && rs.has(pp.Right)
	case sqlast.JoinPred:
		return false // joins are handled during join planning
	default:
		return false
	}
}

// keyableConst reports whether the constant can key a hash/index lookup.
// Floating-point constants fall back to the scan path: the index and the
// dictionaries are keyed by the formatted value, and float formatting has
// corners (negative zero) where format equality and Compare equality
// disagree.
func keyableConst(v relation.Value) bool {
	switch v.(type) {
	case string, int64:
		return true
	default:
		return false
	}
}

// indexableEq reports whether p is an equality against a constant that the
// per-table value index can answer on a pristine base-table scan.
func indexableEq(rs *rowset, p sqlast.Pred) bool {
	pp, ok := p.(sqlast.ComparePred)
	return ok && pp.Op == sqlast.OpEq && rs.base != nil && keyableConst(pp.Value)
}

// dictableEq reports whether an equality constant may be answered through a
// dictionary ID bucket (with a boxed Compare re-verify of the candidates).
// Wider than keyableConst: any constant formats deterministically and the
// re-verify rejects format collisions, so floats qualify too — except a float
// zero, where Format distinguishes "0" from "-0" while Compare does not, so
// the bucket would miss the other sign's rows that a Compare scan matches.
func dictableEq(v relation.Value) bool {
	if f, ok := v.(float64); ok && f == 0 {
		return false
	}
	return true
}

func (e *executor) filterRows(rs *rowset, p sqlast.Pred) (*rowset, error) {
	out := &rowset{cols: rs.cols, dicts: rs.dicts}
	if rs.key != "" {
		out.key = rs.key + "|f:" + p.String()
	}
	st := len(rs.cols)
	emit := func(ri int) {
		out.rows = append(out.rows, rs.rows[ri])
		if out.dicts != nil {
			out.enc = append(out.enc, rs.enc[ri*st:(ri+1)*st]...)
		}
	}
	switch pp := p.(type) {
	case sqlast.ComparePred:
		i, err := rs.resolve(pp.Col)
		if err != nil {
			return nil, err
		}
		if !e.noIndex && indexableEq(rs, p) {
			// Index lookup instead of a scan: candidates come from the value
			// index (ascending row ids, so scan order is preserved) and are
			// re-verified with Compare, which also rejects NULLs colliding
			// with the formatted key.
			for _, ri := range rs.base.Lookup(rs.cols[i].name, pp.Value) {
				v := rs.rows[ri][i]
				if !relation.Null(v) && relation.Compare(v, pp.Value) == 0 {
					emit(ri)
				}
			}
			return out, nil
		}
		if !e.noIndex && pp.Op == sqlast.OpEq && rs.encoded(i) && dictableEq(pp.Value) {
			// Encoded equality on a derived rowset (post-filter, post-join or
			// subquery output): compare dictionary IDs instead of formatting
			// each row, re-verifying candidates exactly like the index path.
			id, ok := rs.dicts[i].ID(pp.Value)
			if !ok {
				return out, nil
			}
			if e.batchOn() {
				// Batch form: a branch-free per-block kernel fills the
				// selection bitset, then the gather emits (and re-verifies)
				// only the selected rows, preallocated to the match count.
				sel, err := e.fillFilterBits(rs, i, id, nil)
				if err != nil {
					return nil, err
				}
				err = e.gatherSelected(rs, sel, out, func(ri int) bool {
					v := rs.rows[ri][i]
					return !relation.Null(v) && relation.Compare(v, pp.Value) == 0
				})
				return out, err
			}
			for ri := range rs.rows {
				if err := e.step(); err != nil {
					return nil, err
				}
				if rs.enc[ri*st+i] != id {
					continue
				}
				v := rs.rows[ri][i]
				if !relation.Null(v) && relation.Compare(v, pp.Value) == 0 {
					emit(ri)
				}
			}
			return out, nil
		}
		for ri, row := range rs.rows {
			if err := e.step(); err != nil {
				return nil, err
			}
			if relation.Null(row[i]) {
				continue
			}
			c := relation.Compare(row[i], pp.Value)
			keep := false
			switch pp.Op {
			case sqlast.OpEq:
				keep = c == 0
			case sqlast.OpNe:
				keep = c != 0
			case sqlast.OpLt:
				keep = c < 0
			case sqlast.OpLe:
				keep = c <= 0
			case sqlast.OpGt:
				keep = c > 0
			case sqlast.OpGe:
				keep = c >= 0
			}
			if keep {
				emit(ri)
			}
		}
	case sqlast.ContainsPred:
		i, err := rs.resolve(pp.Col)
		if err != nil {
			return nil, err
		}
		if d := dictFor(rs, i); d != nil && d.AllStrings() && d.Len() <= len(rs.rows) {
			// Evaluate the substring match once per dictionary entry instead
			// of once per row. Sound only when every encoded value is a
			// string: with mixed types one ID can cover values of different
			// dynamic types, and the per-entry answer would be wrong for
			// some of its rows.
			if e.batchOn() {
				// Batch form: the per-entry answers become a bitset over the
				// ID space, and the per-row pass is a branch-free bit lookup
				// into it. AllStrings implies no NULL rows (NULL is not a
				// string), so no re-verification is needed — exactly like
				// the integer-at-a-time keep table.
				keep := make([]uint64, (d.Len()+63)/64)
				for id := 0; id < d.Len(); id++ {
					s, _ := d.Value(uint32(id)).(string)
					if relation.ContainsFold(s, pp.Needle) {
						keep[id>>6] |= 1 << (uint(id) & 63)
					}
				}
				sel, err := e.fillFilterBits(rs, i, 0, keep)
				if err != nil {
					return nil, err
				}
				err = e.gatherSelected(rs, sel, out, nil)
				return out, err
			}
			keep := make([]bool, d.Len())
			for id := range keep {
				s, _ := d.Value(uint32(id)).(string)
				keep[id] = relation.ContainsFold(s, pp.Needle)
			}
			for ri := range rs.rows {
				if err := e.step(); err != nil {
					return nil, err
				}
				if keep[rs.enc[ri*st+i]] {
					emit(ri)
				}
			}
			return out, nil
		}
		for ri, row := range rs.rows {
			if err := e.step(); err != nil {
				return nil, err
			}
			s, ok := row[i].(string)
			if ok && relation.ContainsFold(s, pp.Needle) {
				emit(ri)
			}
		}
	case sqlast.JoinPred:
		li, err := rs.resolve(pp.Left)
		if err != nil {
			return nil, err
		}
		ri, err := rs.resolve(pp.Right)
		if err != nil {
			return nil, err
		}
		for rowi, row := range rs.rows {
			if err := e.step(); err != nil {
				return nil, err
			}
			if !relation.Null(row[li]) && relation.Equal(row[li], row[ri]) {
				emit(rowi)
			}
		}
	case sqlast.ColComparePred:
		li, err := rs.resolve(pp.Left)
		if err != nil {
			return nil, err
		}
		ri, err := rs.resolve(pp.Right)
		if err != nil {
			return nil, err
		}
		for rowi, row := range rs.rows {
			if err := e.step(); err != nil {
				return nil, err
			}
			if relation.Null(row[li]) || relation.Null(row[ri]) {
				continue
			}
			c := relation.Compare(row[li], row[ri])
			keep := false
			switch pp.Op {
			case sqlast.OpEq:
				keep = c == 0
			case sqlast.OpNe:
				keep = c != 0
			case sqlast.OpLt:
				keep = c < 0
			case sqlast.OpLe:
				keep = c <= 0
			case sqlast.OpGt:
				keep = c > 0
			case sqlast.OpGe:
				keep = c >= 0
			}
			if keep {
				emit(rowi)
			}
		}
	default:
		return nil, fmt.Errorf("sqldb: unsupported predicate %T", p)
	}
	return out, nil
}

// dictFor returns column i's dictionary when the encoded fast paths may use
// it, nil otherwise.
func dictFor(rs *rowset, i int) *relation.Dict {
	if !rs.encoded(i) {
		return nil
	}
	return rs.dicts[i]
}

// join combines two rowsets. With equality predicates it hash-joins —
// over dictionary IDs when every key column is encoded (a per-column
// translation table bridges the two sides' ID spaces), over length-prefixed
// formatted keys otherwise. Without predicates it produces the cross
// product.
func (e *executor) join(left, right *rowset, eqs []sqlast.JoinPred) (*rowset, error) {
	lst, rst := len(left.cols), len(right.cols)
	out := &rowset{cols: make([]boundCol, 0, lst+rst)}
	out.cols = append(append(out.cols, left.cols...), right.cols...)
	if left.dicts != nil || right.dicts != nil {
		out.dicts = make([]*relation.Dict, lst+rst)
		copy(out.dicts[:lst], left.dicts)
		copy(out.dicts[lst:], right.dicts)
	}
	var chunk []uint32 // scratch encoded output row, appended per emit
	if out.dicts != nil {
		chunk = make([]uint32, lst+rst)
	}
	// Output tuples are carved out of arena blocks: one allocation per
	// tupleArenaValues values instead of one per output row. Earlier blocks
	// stay referenced by the tuples sliced from them, and every tuple is
	// capacity-capped so a consumer's append cannot bleed into a neighbor.
	var arena []relation.Value
	width := lst + rst
	emit := func(li, ri int) {
		if len(arena)+width > cap(arena) {
			c := tupleArenaValues
			if width > c {
				c = width
			}
			arena = make([]relation.Value, 0, c)
		}
		off := len(arena)
		arena = arena[:off+width]
		t := relation.Tuple(arena[off : off+width : off+width])
		copy(t[:lst], left.rows[li])
		copy(t[lst:], right.rows[ri])
		out.rows = append(out.rows, t)
		if chunk != nil {
			if left.enc != nil {
				copy(chunk[:lst], left.enc[li*lst:(li+1)*lst])
			}
			if right.enc != nil {
				copy(chunk[lst:], right.enc[ri*rst:(ri+1)*rst])
			}
			out.enc = append(out.enc, chunk...)
		}
	}
	if len(eqs) == 0 {
		for li := range left.rows {
			for ri := range right.rows {
				if err := e.step(); err != nil {
					return nil, err
				}
				emit(li, ri)
			}
		}
		return out, nil
	}
	lidx := make([]int, len(eqs))
	ridx := make([]int, len(eqs))
	for k, jp := range eqs {
		li, err := left.resolve(jp.Left)
		if err != nil {
			return nil, err
		}
		ri, err := right.resolve(jp.Right)
		if err != nil {
			return nil, err
		}
		lidx[k], ridx[k] = li, ri
	}
	encKeys := true
	for k := range eqs {
		if !left.encoded(lidx[k]) || !right.encoded(ridx[k]) {
			encKeys = false
			break
		}
	}

	switch {
	case encKeys && len(eqs) == 1:
		// Single encoded key: build-side rows are chained per dictionary ID
		// through heads/next — zero allocations per row — and probed through
		// a cached left-to-right ID translation table. Chains are threaded in
		// reverse row order so probing walks matches in ascending row order,
		// matching the formatted-key path's output order exactly. NULL never
		// joins, and NULL shares its ID with the literal string "NULL", so
		// the skip must test the boxed value.
		li, ri := lidx[0], ridx[0]
		next := make([]int32, len(right.rows))
		nd := right.dicts[ri].Len()
		var denseHeads []int32
		var mapHeads map[uint32]int32
		if nd <= 4*len(right.rows)+1024 {
			// Dictionary small relative to the build side: index chain heads
			// by ID directly.
			denseHeads = make([]int32, nd)
			for i := range denseHeads {
				denseHeads[i] = -1
			}
			for rj := len(right.rows) - 1; rj >= 0; rj-- {
				if relation.Null(right.rows[rj][ri]) {
					continue
				}
				id := right.enc[rj*rst+ri]
				next[rj] = denseHeads[id]
				denseHeads[id] = int32(rj)
			}
		} else {
			// Build side much smaller than the dictionary (a filtered scan
			// over a wide column): a map wastes less than a dense table.
			mapHeads = make(map[uint32]int32, len(right.rows))
			for rj := len(right.rows) - 1; rj >= 0; rj-- {
				if relation.Null(right.rows[rj][ri]) {
					continue
				}
				id := right.enc[rj*rst+ri]
				h, ok := mapHeads[id]
				if !ok {
					h = -1
				}
				next[rj] = h
				mapHeads[id] = int32(rj)
			}
		}
		remap := left.dicts[li].RemapCached(right.dicts[ri])
		if e.batchOn() {
			if e.parFor(len(left.rows)) > 1 {
				// Shard-parallel probe: per-shard match collection, then an
				// exactly-preallocated materialization at prefix-sum offsets
				// (see parProbe). Output is byte-identical to batchProbe.
				if err := e.parProbe(left, right, li, remap, denseHeads, mapHeads, next, out); err != nil {
					return nil, err
				}
				return out, nil
			}
			// Batch probe: translate a block of probe IDs through the remap
			// table, mask misses and NULLs branch-free, walk chains only for
			// the packed survivors (see batchProbe).
			if err := e.batchProbe(left, li, remap, denseHeads, mapHeads, next, emit); err != nil {
				return nil, err
			}
			return out, nil
		}
		headOf := func(id uint32) int32 {
			if denseHeads != nil {
				return denseHeads[id]
			}
			if h, ok := mapHeads[id]; ok {
				return h
			}
			return -1
		}
		for lj, lr := range left.rows {
			if err := e.step(); err != nil {
				return nil, err
			}
			if relation.Null(lr[li]) {
				continue
			}
			id := remap[left.enc[lj*lst+li]]
			if id == relation.NoID {
				continue
			}
			for rj := headOf(id); rj >= 0; rj = next[rj] {
				emit(lj, int(rj))
			}
		}
	case encKeys && len(eqs) == 2:
		// Two encoded keys pack into one uint64, chained exactly like the
		// single-key kernel: no per-row allocation on either side.
		l0, l1 := lidx[0], lidx[1]
		r0, r1 := ridx[0], ridx[1]
		next := make([]int32, len(right.rows))
		heads := make(map[uint64]int32, len(right.rows))
		for rj := len(right.rows) - 1; rj >= 0; rj-- {
			rr := right.rows[rj]
			if relation.Null(rr[r0]) || relation.Null(rr[r1]) {
				continue
			}
			key := uint64(right.enc[rj*rst+r0]) | uint64(right.enc[rj*rst+r1])<<32
			h, ok := heads[key]
			if !ok {
				h = -1
			}
			next[rj] = h
			heads[key] = int32(rj)
		}
		remap0 := left.dicts[l0].RemapCached(right.dicts[r0])
		remap1 := left.dicts[l1].RemapCached(right.dicts[r1])
		for lj, lr := range left.rows {
			if err := e.step(); err != nil {
				return nil, err
			}
			if relation.Null(lr[l0]) || relation.Null(lr[l1]) {
				continue
			}
			id0 := remap0[left.enc[lj*lst+l0]]
			id1 := remap1[left.enc[lj*lst+l1]]
			if id0 == relation.NoID || id1 == relation.NoID {
				continue
			}
			h, ok := heads[uint64(id0)|uint64(id1)<<32]
			if !ok {
				continue
			}
			for rj := h; rj >= 0; rj = next[rj] {
				emit(lj, int(rj))
			}
		}
	case encKeys:
		// Three or more encoded keys: pack the 4-byte IDs into a reusable buffer.
		// Probing with map[string(buf)] is allocation-free; only inserting a
		// new distinct key copies the buffer into a string.
		slots := make(map[string]int, len(right.rows))
		var lists [][]int
		buf := make([]byte, 0, 4*len(eqs))
	buildRows:
		for rj, rr := range right.rows {
			buf = buf[:0]
			for k := range eqs {
				if relation.Null(rr[ridx[k]]) {
					continue buildRows
				}
				buf = appendLE32(buf, right.enc[rj*rst+ridx[k]])
			}
			slot, ok := slots[string(buf)]
			if !ok {
				slot = len(lists)
				slots[string(buf)] = slot
				lists = append(lists, nil)
			}
			lists[slot] = append(lists[slot], rj)
		}
		remaps := make([][]uint32, len(eqs))
		for k := range eqs {
			remaps[k] = left.dicts[lidx[k]].RemapCached(right.dicts[ridx[k]])
		}
	probeRows:
		for lj, lr := range left.rows {
			if err := e.step(); err != nil {
				return nil, err
			}
			buf = buf[:0]
			for k := range eqs {
				if relation.Null(lr[lidx[k]]) {
					continue probeRows
				}
				id := remaps[k][left.enc[lj*lst+lidx[k]]]
				if id == relation.NoID {
					continue probeRows
				}
				buf = appendLE32(buf, id)
			}
			slot, ok := slots[string(buf)]
			if !ok {
				continue
			}
			for _, rj := range lists[slot] {
				emit(lj, rj)
			}
		}
	default:
		// Unencoded fallback: length-prefixed formatted keys. Like the
		// encoded kernels these cannot alias values containing the old
		// "\x1f" separator.
		slots := make(map[string]int, len(right.rows))
		var lists [][]int
		var buf []byte
		for rj, rr := range right.rows {
			var ok bool
			buf, ok = appendJoinKey(buf[:0], rr, ridx)
			if !ok {
				continue
			}
			slot, have := slots[string(buf)]
			if !have {
				slot = len(lists)
				slots[string(buf)] = slot
				lists = append(lists, nil)
			}
			lists[slot] = append(lists[slot], rj)
		}
		for lj, lr := range left.rows {
			if err := e.step(); err != nil {
				return nil, err
			}
			var ok bool
			buf, ok = appendJoinKey(buf[:0], lr, lidx)
			if !ok {
				continue
			}
			slot, have := slots[string(buf)]
			if !have {
				continue
			}
			for _, rj := range lists[slot] {
				emit(lj, rj)
			}
		}
	}
	return out, nil
}

// appendJoinKey appends the length-prefixed formatted join key of the given
// columns, reporting false when any key value is NULL (NULL never joins).
func appendJoinKey(buf []byte, row relation.Tuple, idx []int) ([]byte, bool) {
	for _, i := range idx {
		v := row[i]
		if relation.Null(v) {
			return buf, false
		}
		buf = appendFormatted(buf, v)
	}
	return buf, true
}

// tupleArenaValues sizes the arena blocks that join output tuples are carved
// from: larger blocks amortize allocation further but round the last block's
// waste up.
const tupleArenaValues = 8192

// project evaluates the SELECT list, applying GROUP BY and aggregates.
// wantEnc asks for the output rowset to carry dictionary encoding for the
// pass-through columns (worth it when the projection feeds DISTINCT or an
// outer query's joins; wasted at the top level of a statement).
func (e *executor) project(rs *rowset, q *sqlast.Query, wantEnc bool) (*rowset, error) {
	out := &rowset{cols: make([]boundCol, len(q.Select))}
	hasAgg := false
	for k, it := range q.Select {
		out.cols[k] = boundCol{name: outputName(it)}
		if _, ok := it.Expr.(sqlast.AggExpr); ok {
			hasAgg = true
		}
	}
	st := len(rs.cols)

	if !hasAgg && len(q.GroupBy) == 0 {
		idxs := make([]int, len(q.Select))
		for k, it := range q.Select {
			ce, ok := it.Expr.(sqlast.ColExpr)
			if !ok {
				return nil, fmt.Errorf("sqldb: unsupported select expression %T", it.Expr)
			}
			i, err := rs.resolve(ce.Col)
			if err != nil {
				return nil, err
			}
			idxs[k] = i
		}
		if wantEnc && rs.dicts != nil {
			dicts := make([]*relation.Dict, len(idxs))
			any := false
			for k, i := range idxs {
				if dicts[k] = rs.dicts[i]; dicts[k] != nil {
					any = true
				}
			}
			if any {
				out.dicts = dicts
				out.enc = make([]uint32, 0, len(rs.rows)*len(idxs))
			}
		}
		// All output tuples share one flat backing array (capacity-capped per
		// tuple, and never mutated after projection), so the projection costs
		// one allocation instead of one per row.
		nc := len(idxs)
		backing := make([]relation.Value, len(rs.rows)*nc)
		out.rows = make([]relation.Tuple, 0, len(rs.rows))
		for ri, row := range rs.rows {
			tuple := relation.Tuple(backing[ri*nc : (ri+1)*nc : (ri+1)*nc])
			for k, i := range idxs {
				tuple[k] = row[i]
			}
			out.rows = append(out.rows, tuple)
			if out.dicts != nil {
				for _, i := range idxs {
					out.enc = append(out.enc, rs.enc[ri*st+i])
				}
			}
		}
		return out, nil
	}

	gidx := make([]int, len(q.GroupBy))
	for k, c := range q.GroupBy {
		i, err := rs.resolve(c)
		if err != nil {
			return nil, err
		}
		gidx[k] = i
	}

	// Resolve the select list once, not per group — and before grouping, so
	// the batch path can pick the columnar fold for simple plans.
	plan, err := resolveSelect(rs, q.Select)
	if err != nil {
		return nil, err
	}

	// Bucket rows into groups; lists and firsts are in first-seen order.
	// Unlike joins, grouping does not skip NULLs — a NULL key groups with
	// the literal string "NULL" by format, which is exactly the class the
	// shared dictionary ID represents.
	var lists [][]int
	var firsts []int
	allEnc := len(gidx) > 0
	for _, g := range gidx {
		if !rs.encoded(g) {
			allEnc = false
			break
		}
	}
	if e.batchOn() && len(rs.rows) > 0 && (len(gidx) == 0 || allEnc) {
		var rowSlot []int32
		var bfirsts []int
		var sizes []int32
		var err error
		par := e.parFor(len(rs.rows)) > 1
		if par && len(gidx) >= 1 && len(gidx) <= 2 {
			rowSlot, bfirsts, sizes, err = e.parGroupSlots(rs, gidx)
		} else {
			rowSlot, bfirsts, sizes, err = e.batchGroupSlots(rs, gidx)
		}
		if err != nil {
			return nil, err
		}
		if rowSlot != nil { // shape is batchable (0–2 encoded key columns)
			firsts = bfirsts
			if par {
				// Shard-parallel fold: distinct slots fold concurrently, each
				// slot's rows in ascending order on one worker — value- and
				// byte-identical to the sequential folds (see parAggregate).
				if wantEnc {
					setupGroupEnc(out, rs, plan, len(firsts))
				}
				if err := e.parAggregate(rs, plan, rowSlot, firsts, sizes, out); err != nil {
					return nil, err
				}
				return out, nil
			}
			if simplePlan(plan) {
				// Columnar fold: aggregate straight off the slot assignment,
				// never materializing per-slot row lists.
				if wantEnc {
					setupGroupEnc(out, rs, plan, len(firsts))
				}
				if err := e.batchAggregate(rs, plan, rowSlot, firsts, sizes, out); err != nil {
					return nil, err
				}
				return out, nil
			}
			// DISTINCT aggregates still need the row lists: carve them from
			// the slot assignment by counting sort and share the generic
			// per-slot loop below.
			lists = carveLists(rowSlot, sizes)
		}
	}
	switch {
	case lists != nil:
		// Grouped by the batch path above.
	case len(gidx) == 1 && allEnc:
		// Single encoded group key: no per-row key building at all. When the
		// dictionary is small relative to the input, slot lookup is a dense
		// array index; otherwise a uint32-keyed map.
		g := gidx[0]
		if nd := rs.dicts[g].Len(); nd <= 4*len(rs.rows)+1024 {
			slotOf := make([]int32, nd)
			for i := range slotOf {
				slotOf[i] = -1
			}
			for ri := range rs.rows {
				if err := e.step(); err != nil {
					return nil, err
				}
				id := rs.enc[ri*st+g]
				slot := slotOf[id]
				if slot < 0 {
					slot = int32(len(lists))
					slotOf[id] = slot
					lists = append(lists, nil)
					firsts = append(firsts, ri)
				}
				lists[slot] = append(lists[slot], ri)
			}
		} else {
			slots := make(map[uint32]int)
			for ri := range rs.rows {
				if err := e.step(); err != nil {
					return nil, err
				}
				id := rs.enc[ri*st+g]
				slot, ok := slots[id]
				if !ok {
					slot = len(lists)
					slots[id] = slot
					lists = append(lists, nil)
					firsts = append(firsts, ri)
				}
				lists[slot] = append(lists[slot], ri)
			}
		}
	case len(gidx) == 2 && allEnc:
		// Two encoded group keys pack into one uint64 — no byte-buffer
		// hashing, no string interning per group.
		g0, g1 := gidx[0], gidx[1]
		slots := make(map[uint64]int)
		for ri := range rs.rows {
			if err := e.step(); err != nil {
				return nil, err
			}
			key := uint64(rs.enc[ri*st+g0]) | uint64(rs.enc[ri*st+g1])<<32
			slot, ok := slots[key]
			if !ok {
				slot = len(lists)
				slots[key] = slot
				lists = append(lists, nil)
				firsts = append(firsts, ri)
			}
			lists[slot] = append(lists[slot], ri)
		}
	case len(gidx) > 0:
		// General path: packed IDs for encoded key columns, length-prefixed
		// formats for the rest. Lookups through map[string(buf)] are
		// allocation-free; a new group interns its key once.
		slots := make(map[string]int)
		var buf []byte
		for ri := range rs.rows {
			if err := e.step(); err != nil {
				return nil, err
			}
			buf = rs.appendHashKey(buf[:0], ri, gidx)
			slot, ok := slots[string(buf)]
			if !ok {
				slot = len(lists)
				slots[string(buf)] = slot
				lists = append(lists, nil)
				firsts = append(firsts, ri)
			}
			lists[slot] = append(lists[slot], ri)
		}
	default:
		// Aggregates without GROUP BY: one group holding every row.
		if len(rs.rows) > 0 {
			all := make([]int, len(rs.rows))
			for i := range all {
				all[i] = i
			}
			lists = [][]int{all}
			firsts = []int{0}
		}
	}
	synthetic := false
	if len(gidx) == 0 && len(lists) == 0 {
		// Aggregates over an empty input still yield one row.
		lists = [][]int{nil}
		firsts = []int{-1}
		synthetic = true
	}

	if wantEnc && !synthetic {
		setupGroupEnc(out, rs, plan, len(lists))
	}
	for slot, rows := range lists {
		first := firsts[slot]
		tuple := make(relation.Tuple, len(plan))
		for k, s := range plan {
			if s.agg {
				v, err := aggregate(s.ex, rs, rows, s.col)
				if err != nil {
					return nil, err
				}
				tuple[k] = v
			} else if first >= 0 {
				tuple[k] = rs.rows[first][s.col]
			}
		}
		out.rows = append(out.rows, tuple)
		if out.dicts != nil {
			for k, s := range plan {
				var id uint32
				if out.dicts[k] != nil {
					id = rs.enc[first*st+s.col]
				}
				out.enc = append(out.enc, id)
			}
		}
	}
	return out, nil
}

// selItem is one resolved SELECT item: a pass-through column or an
// aggregate over a column.
type selItem struct {
	agg bool
	ex  sqlast.AggExpr
	col int
}

// resolveSelect resolves every SELECT item against the rowset.
func resolveSelect(rs *rowset, items []sqlast.SelectItem) ([]selItem, error) {
	plan := make([]selItem, len(items))
	for k, it := range items {
		switch ex := it.Expr.(type) {
		case sqlast.ColExpr:
			i, err := rs.resolve(ex.Col)
			if err != nil {
				return nil, err
			}
			plan[k] = selItem{col: i}
		case sqlast.AggExpr:
			i, err := rs.resolve(ex.Arg)
			if err != nil {
				return nil, err
			}
			plan[k] = selItem{agg: true, ex: ex, col: i}
		default:
			return nil, fmt.Errorf("sqldb: unsupported select expression %T", it.Expr)
		}
	}
	return plan, nil
}

// setupGroupEnc attaches an output encoding for the pass-through columns of
// a grouped projection over ngroups groups (when any column carries one).
func setupGroupEnc(out, rs *rowset, plan []selItem, ngroups int) {
	if rs.dicts == nil {
		return
	}
	dicts := make([]*relation.Dict, len(plan))
	any := false
	for k, s := range plan {
		if !s.agg && rs.dicts[s.col] != nil {
			dicts[k] = rs.dicts[s.col]
			any = true
		}
	}
	if any {
		out.dicts = dicts
		out.enc = make([]uint32, 0, ngroups*len(plan))
	}
}

func aggregate(ex sqlast.AggExpr, rs *rowset, rows []int, i int) (relation.Value, error) {
	st := len(rs.cols)
	if !ex.Distinct {
		// Without DISTINCT the aggregate folds in one pass over the group —
		// no intermediate value slice.
		switch ex.Func {
		case sqlast.AggCount:
			n := int64(0)
			for _, ri := range rows {
				if !relation.Null(rs.rows[ri][i]) {
					n++
				}
			}
			return relation.Int(n), nil
		case sqlast.AggMin, sqlast.AggMax:
			var best relation.Value
			for _, ri := range rows {
				v := rs.rows[ri][i]
				if relation.Null(v) {
					continue
				}
				if best == nil {
					best = v
					continue
				}
				c := relation.Compare(v, best)
				if (ex.Func == sqlast.AggMin && c < 0) || (ex.Func == sqlast.AggMax && c > 0) {
					best = v
				}
			}
			return best, nil
		case sqlast.AggSum, sqlast.AggAvg:
			sum, n, allInt := 0.0, 0, true
			for _, ri := range rows {
				v := rs.rows[ri][i]
				if relation.Null(v) {
					continue
				}
				f, ok := relation.AsFloat(v)
				if !ok {
					return nil, fmt.Errorf("sqldb: %s over non-numeric value %v", ex.Func, v)
				}
				if _, isInt := v.(int64); !isInt {
					allInt = false
				}
				sum += f
				n++
			}
			if n == 0 {
				return nil, nil
			}
			if ex.Func == sqlast.AggAvg {
				return relation.Float(sum / float64(n)), nil
			}
			if allInt {
				return relation.Int(int64(sum)), nil
			}
			return relation.Float(sum), nil
		default:
			return nil, fmt.Errorf("sqldb: unknown aggregate %q", ex.Func)
		}
	}
	var vals []relation.Value
	if rs.encoded(i) {
		// DISTINCT de-duplicates by formatted value; the dictionary ID is
		// that class, so no per-row formatting is needed.
		seen := make(map[uint32]bool)
		for _, ri := range rows {
			v := rs.rows[ri][i]
			if relation.Null(v) {
				continue
			}
			id := rs.enc[ri*st+i]
			if seen[id] {
				continue
			}
			seen[id] = true
			vals = append(vals, v)
		}
	} else {
		seen := make(map[string]bool)
		for _, ri := range rows {
			v := rs.rows[ri][i]
			if relation.Null(v) {
				continue
			}
			k := relation.Format(v)
			if seen[k] {
				continue
			}
			seen[k] = true
			vals = append(vals, v)
		}
	}
	switch ex.Func {
	case sqlast.AggCount:
		return relation.Int(int64(len(vals))), nil
	case sqlast.AggMin, sqlast.AggMax:
		if len(vals) == 0 {
			return nil, nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c := relation.Compare(v, best)
			if (ex.Func == sqlast.AggMin && c < 0) || (ex.Func == sqlast.AggMax && c > 0) {
				best = v
			}
		}
		return best, nil
	case sqlast.AggSum, sqlast.AggAvg:
		if len(vals) == 0 {
			return nil, nil
		}
		sum := 0.0
		allInt := true
		for _, v := range vals {
			f, ok := relation.AsFloat(v)
			if !ok {
				return nil, fmt.Errorf("sqldb: %s over non-numeric value %v", ex.Func, v)
			}
			if _, isInt := v.(int64); !isInt {
				allInt = false
			}
			sum += f
		}
		if ex.Func == sqlast.AggAvg {
			return relation.Float(sum / float64(len(vals))), nil
		}
		if allInt {
			return relation.Int(int64(sum)), nil
		}
		return relation.Float(sum), nil
	default:
		return nil, fmt.Errorf("sqldb: unknown aggregate %q", ex.Func)
	}
}

func outputName(it sqlast.SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	switch ex := it.Expr.(type) {
	case sqlast.ColExpr:
		return ex.Col.Column
	default:
		return it.Expr.String()
	}
}

func distinctRowset(rs *rowset) *rowset {
	out := &rowset{cols: rs.cols, dicts: rs.dicts}
	st := len(rs.cols)
	out.rows = make([]relation.Tuple, 0, len(rs.rows))
	if out.dicts != nil {
		out.enc = make([]uint32, 0, len(rs.rows)*st)
	}
	emit := func(ri int) {
		out.rows = append(out.rows, rs.rows[ri])
		if out.dicts != nil {
			out.enc = append(out.enc, rs.enc[ri*st:(ri+1)*st]...)
		}
	}
	if st == 1 && rs.encoded(0) {
		if nd := rs.dicts[0].Len(); nd <= 4*len(rs.rows)+1024 {
			seen := make([]bool, nd)
			for ri := range rs.rows {
				id := rs.enc[ri]
				if seen[id] {
					continue
				}
				seen[id] = true
				emit(ri)
			}
			return out
		}
		seen := make(map[uint32]bool, len(rs.rows))
		for ri := range rs.rows {
			id := rs.enc[ri]
			if seen[id] {
				continue
			}
			seen[id] = true
			emit(ri)
		}
		return out
	}
	if st == 2 && rs.encoded(0) && rs.encoded(1) {
		nd0, nd1 := int64(rs.dicts[0].Len()), int64(rs.dicts[1].Len())
		if prod := nd0 * nd1; prod <= 64*int64(len(rs.rows))+4096 {
			// The combined ID space is small: de-duplicate through a bitset
			// indexed by id0*nd1+id1 instead of hashing at all.
			seen := make([]uint64, (prod+63)/64)
			for ri := range rs.rows {
				key := int64(rs.enc[ri*2])*nd1 + int64(rs.enc[ri*2+1])
				w, b := key/64, uint(key%64)
				if seen[w]&(1<<b) != 0 {
					continue
				}
				seen[w] |= 1 << b
				emit(ri)
			}
			return out
		}
		seen := make(map[uint64]struct{}, len(rs.rows))
		for ri := range rs.rows {
			key := uint64(rs.enc[ri*2]) | uint64(rs.enc[ri*2+1])<<32
			if _, ok := seen[key]; ok {
				continue
			}
			seen[key] = struct{}{}
			emit(ri)
		}
		return out
	}
	idx := make([]int, st)
	for i := range idx {
		idx[i] = i
	}
	seen := make(map[string]bool, len(rs.rows))
	var buf []byte
	for ri := range rs.rows {
		buf = rs.appendHashKey(buf[:0], ri, idx)
		if seen[string(buf)] {
			continue
		}
		seen[string(buf)] = true
		emit(ri)
	}
	return out
}

func orderByRowset(rs *rowset, items []sqlast.OrderItem) error {
	idxs := make([]int, len(items))
	for k, o := range items {
		found := -1
		for i, bc := range rs.cols {
			if strings.EqualFold(bc.name, o.Col.Column) || strings.EqualFold(bc.name, o.Col.String()) {
				found = i
				break
			}
		}
		if found < 0 {
			return fmt.Errorf("sqldb: ORDER BY column %s not in result", o.Col)
		}
		idxs[k] = found
	}
	less := func(a, b relation.Tuple) bool {
		for k, i := range idxs {
			c := relation.Compare(a[i], b[i])
			if c != 0 {
				if items[k].Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	}
	if rs.enc == nil {
		sort.SliceStable(rs.rows, func(a, b int) bool { return less(rs.rows[a], rs.rows[b]) })
		return nil
	}
	// Sort a permutation, then rebuild rows and the encoding in lockstep.
	st := len(rs.cols)
	perm := make([]int, len(rs.rows))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool { return less(rs.rows[perm[a]], rs.rows[perm[b]]) })
	rows := make([]relation.Tuple, len(rs.rows))
	enc := make([]uint32, len(rs.enc))
	for ni, oi := range perm {
		rows[ni] = rs.rows[oi]
		copy(enc[ni*st:(ni+1)*st], rs.enc[oi*st:(oi+1)*st])
	}
	rs.rows, rs.enc = rows, enc
	return nil
}
