package sqldb

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"kwagg/internal/relation"
	"kwagg/internal/sqlast"
)

// corpus holds statements in canonical rendering: parsing and re-rendering
// each must be the identity.
var corpus = []string{
	"SELECT S.Sid FROM Student S",
	"SELECT S.Sid, S.Sname FROM Student S WHERE S.Age > 21",
	"SELECT DISTINCT Lid, Code FROM Teach",
	"SELECT S.Sname, SUM(C.Credit) AS sumCredit FROM Student S, Enrol E, Course C " +
		"WHERE E.Sid=S.Sid AND E.Code=C.Code AND S.Sname CONTAINS 'Green' GROUP BY S.Sname",
	"SELECT COUNT(L.Lid) AS numLid FROM Lecturer L, (SELECT DISTINCT Lid, Code FROM Teach) T " +
		"WHERE T.Lid=L.Lid",
	"SELECT AVG(R.numLid) AS avgnumLid FROM (SELECT C.Code, COUNT(L.Lid) AS numLid " +
		"FROM Lecturer L, Course C, (SELECT DISTINCT Lid, Code FROM Teach) T " +
		"WHERE T.Lid=L.Lid AND T.Code=C.Code GROUP BY C.Code) R",
	"SELECT S.Sid FROM Student S WHERE S.Age >= 21 AND S.Age <= 24 AND S.Age <> 22",
	"SELECT S.Sid FROM Student S ORDER BY S.Sid DESC",
	"SELECT COUNT(DISTINCT E.Sid) AS n FROM Enrol E",
	"SELECT S.Sname FROM Student S WHERE S.Sname CONTAINS 'O''Brien'",
	"SELECT R1.Sid, COUNT(R1.Code) AS numCode FROM Enrolment R1, Enrolment R2 " +
		"WHERE R1.Code=R2.Code AND R1.Sname CONTAINS 'Green' AND R2.Sname CONTAINS 'George' " +
		"GROUP BY R1.Sid",
}

func TestParseRenderRoundTrip(t *testing.T) {
	for _, sql := range corpus {
		q, err := Parse(sql)
		if err != nil {
			t.Fatalf("Parse(%q): %v", sql, err)
		}
		if got := q.String(); got != sql {
			t.Errorf("round trip changed:\n in  %s\n out %s", sql, got)
		}
	}
}

// TestParseRenderFixpoint: rendering a parsed random query and parsing it
// again yields an identical tree (render-parse is a fixpoint).
func TestParseRenderFixpoint(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		q := randomQuery(r, 2)
		text := q.String()
		back, err := Parse(text)
		if err != nil {
			t.Fatalf("Parse(%q): %v", text, err)
		}
		if back.String() != text {
			t.Fatalf("fixpoint violated:\n first  %s\n second %s", text, back.String())
		}
		if !reflect.DeepEqual(normalize(back), normalize(q)) {
			t.Fatalf("trees differ for %s", text)
		}
	}
}

// normalize clears fields the parser fills with defaults (e.g. an alias
// equal to the table name).
func normalize(q *sqlast.Query) *sqlast.Query {
	c := q.Clone()
	for i, tr := range c.From {
		if tr.Subquery != nil {
			c.From[i].Subquery = normalize(tr.Subquery)
		}
		if strings.EqualFold(tr.Alias, tr.Name) {
			c.From[i].Alias = strings.ToLower(tr.Alias)
			c.From[i].Name = strings.ToLower(tr.Name)
		}
	}
	return c
}

var identPool = []string{"Student", "Course", "Enrol", "Sid", "Code", "Sname", "Credit", "T1", "T2"}

func randomCol(r *rand.Rand) sqlast.Col {
	c := sqlast.Col{Column: identPool[r.Intn(len(identPool))]}
	if r.Intn(2) == 0 {
		c.Table = identPool[r.Intn(len(identPool))]
	}
	return c
}

func randomQuery(r *rand.Rand, depth int) *sqlast.Query {
	q := &sqlast.Query{Distinct: r.Intn(3) == 0}
	n := 1 + r.Intn(3)
	for i := 0; i < n; i++ {
		if r.Intn(2) == 0 {
			q.Select = append(q.Select, sqlast.SelectItem{Expr: sqlast.ColExpr{Col: randomCol(r)}})
		} else {
			funcs := []sqlast.AggFunc{sqlast.AggCount, sqlast.AggSum, sqlast.AggAvg, sqlast.AggMin, sqlast.AggMax}
			it := sqlast.SelectItem{Expr: sqlast.AggExpr{
				Func:     funcs[r.Intn(len(funcs))],
				Arg:      randomCol(r),
				Distinct: r.Intn(4) == 0,
			}}
			if r.Intn(2) == 0 {
				it.Alias = "x" + identPool[r.Intn(len(identPool))]
			}
			q.Select = append(q.Select, it)
		}
	}
	m := 1 + r.Intn(2)
	for i := 0; i < m; i++ {
		if depth > 0 && r.Intn(4) == 0 {
			q.From = append(q.From, sqlast.TableRef{Subquery: randomQuery(r, depth-1), Alias: "Q" + identPool[r.Intn(len(identPool))]})
		} else {
			name := identPool[r.Intn(len(identPool))]
			alias := name
			if r.Intn(2) == 0 {
				alias = "A" + identPool[r.Intn(len(identPool))]
			}
			q.From = append(q.From, sqlast.TableRef{Name: name, Alias: alias})
		}
	}
	for i := 0; i < r.Intn(3); i++ {
		switch r.Intn(3) {
		case 0:
			q.Where = append(q.Where, sqlast.JoinPred{Left: randomCol(r), Right: randomCol(r)})
		case 1:
			ops := []sqlast.CmpOp{sqlast.OpEq, sqlast.OpNe, sqlast.OpLt, sqlast.OpLe, sqlast.OpGt, sqlast.OpGe}
			var v relation.Value
			if r.Intn(2) == 0 {
				v = relation.Int(int64(r.Intn(100)))
			} else {
				v = relation.Str("v" + identPool[r.Intn(len(identPool))])
			}
			q.Where = append(q.Where, sqlast.ComparePred{Col: randomCol(r), Op: ops[r.Intn(len(ops))], Value: v})
		default:
			q.Where = append(q.Where, sqlast.ContainsPred{Col: randomCol(r), Needle: "needle's"})
		}
	}
	for i := 0; i < r.Intn(2); i++ {
		q.GroupBy = append(q.GroupBy, randomCol(r))
	}
	for i := 0; i < r.Intn(2); i++ {
		q.OrderBy = append(q.OrderBy, sqlast.OrderItem{Col: randomCol(r), Desc: r.Intn(2) == 0})
	}
	return q
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM T",
		"SELECT x",
		"SELECT x FROM",
		"SELECT x FROM T WHERE",
		"SELECT x FROM T WHERE x =",
		"SELECT x FROM T GROUP",
		"SELECT x FROM T ORDER x",
		"SELECT x FROM (SELECT y FROM T",
		"SELECT x FROM T trailing nonsense !",
		"SELECT COUNT(x FROM T",
		"SELECT x FROM T WHERE x CONTAINS y",
		"SELECT x FROM T WHERE x = 'unterminated",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		}
	}
}

func TestParseLIKEAsContains(t *testing.T) {
	q, err := Parse("SELECT x FROM T WHERE x LIKE '%olive%'")
	if err != nil {
		t.Fatal(err)
	}
	cp, ok := q.Where[0].(sqlast.ContainsPred)
	if !ok || cp.Needle != "olive" {
		t.Errorf("LIKE should normalize to CONTAINS: %#v", q.Where[0])
	}
}

func TestParseGroupByVariants(t *testing.T) {
	for _, sql := range []string{
		"SELECT x FROM T GROUP BY x",
		"SELECT x FROM T GROUPBY x",
		"SELECT x FROM T group by x",
	} {
		q, err := Parse(sql)
		if err != nil {
			t.Fatalf("Parse(%q): %v", sql, err)
		}
		if len(q.GroupBy) != 1 {
			t.Errorf("Parse(%q): GroupBy = %v", sql, q.GroupBy)
		}
	}
}

func TestParseAliasKeywordBoundary(t *testing.T) {
	q, err := Parse("SELECT T.x FROM Transactions T WHERE T.x = 1")
	if err != nil {
		t.Fatal(err)
	}
	if q.From[0].Alias != "T" {
		t.Errorf("alias: %q", q.From[0].Alias)
	}
	// A reserved word after a table ref must not be eaten as an alias.
	q, err = Parse("SELECT x FROM T ORDER BY x")
	if err != nil {
		t.Fatal(err)
	}
	if q.From[0].Alias != "T" || len(q.OrderBy) != 1 {
		t.Errorf("ORDER consumed as alias: %+v", q)
	}
}

func TestParseNumberLiterals(t *testing.T) {
	q, err := Parse("SELECT x FROM T WHERE a = -5 AND b = 2.75")
	if err != nil {
		t.Fatal(err)
	}
	if v := q.Where[0].(sqlast.ComparePred).Value; v.(int64) != -5 {
		t.Errorf("negative int: %v", v)
	}
	if v := q.Where[1].(sqlast.ComparePred).Value; v.(float64) != 2.75 {
		t.Errorf("float: %v", v)
	}
}
