package sqldb

import (
	"testing"

	"kwagg/internal/relation"
)

// allocDB builds a frozen single-table database big enough that per-row
// allocations dominate any fixed setup cost: n rows with 16 distinct group
// keys, 64 distinct join keys and 32 distinct float values (floats are not
// indexable, so equality on F exercises the scan-side filter kernel).
func allocDB(n int) *relation.Database {
	db := relation.NewDatabase("alloc")
	tt := db.AddSchema(relation.NewSchema("T", "G INT", "V INT", "K INT", "F FLOAT").Key("V"))
	for i := 0; i < n; i++ {
		tt.MustInsert(int64(i%16), int64(i), int64(i%64), float64(i%32)+0.5)
	}
	uu := db.AddSchema(relation.NewSchema("U", "K INT", "M INT").Key("K"))
	for i := 0; i < 16; i++ {
		uu.MustInsert(int64(i), int64(i*100))
	}
	db.Freeze()
	return db
}

// assertAllocsPerRow pins a hash hot path to (near) zero allocations per
// input row: the fixed per-statement overhead (rowsets, group lists, the
// output) is allowed, per-row key construction is not.
func assertAllocsPerRow(t *testing.T, label string, rows int, maxPerRow float64, fn func()) {
	t.Helper()
	fn() // warm the dictionaries' cached remap tables, as a serving engine is
	allocs := testing.AllocsPerRun(10, fn)
	perRow := allocs / float64(rows)
	t.Logf("%s: %.0f allocs/op over %d rows = %.4f allocs/row", label, allocs, rows, perRow)
	if perRow > maxPerRow {
		t.Errorf("%s allocates %.4f/row (%.0f total), want <= %.4f/row — a per-row allocation crept into the hash path",
			label, perRow, allocs, maxPerRow)
	}
}

// TestGroupKeyAllocs pins the GROUP BY key path: grouping rows by an encoded
// column must not allocate per row (dense slot table, no key strings).
func TestGroupKeyAllocs(t *testing.T) {
	const rows = 20000
	db := allocDB(rows)
	q, err := Parse("SELECT T.G, COUNT(T.V) AS n FROM T GROUP BY T.G")
	if err != nil {
		t.Fatal(err)
	}
	assertAllocsPerRow(t, "group-by", rows, 0.05, func() {
		if _, err := Exec(db, q); err != nil {
			t.Fatal(err)
		}
	})
}

// TestJoinKeyAllocs pins the hash-join key path: building over the big side
// and probing must not allocate per row (ID chains, cached remap table).
func TestJoinKeyAllocs(t *testing.T) {
	const rows = 20000
	db := allocDB(rows)
	// U's 16 keys hit a quarter of T's 64, so the probe is low-match-rate and
	// the output (rows/4) stays small next to the build side.
	q, err := Parse("SELECT COUNT(T.V) AS n FROM T, U WHERE U.K = T.K")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Exec(db, q)
	if err != nil {
		t.Fatal(err)
	}
	matches := int64(0)
	for i := 0; i < rows; i++ {
		if i%64 < 16 {
			matches++
		}
	}
	if res.Rows[0][0] != relation.Value(matches) {
		t.Fatalf("join cardinality %v, want %v", res.Rows[0][0], matches)
	}
	assertAllocsPerRow(t, "hash-join", rows, 0.05, func() {
		if _, err := Exec(db, q); err != nil {
			t.Fatal(err)
		}
	})
}

// TestDistinctKeyAllocs pins DISTINCT over two encoded columns (the packed
// uint64/bitset path).
func TestDistinctKeyAllocs(t *testing.T) {
	const rows = 20000
	db := allocDB(rows)
	q, err := Parse("SELECT DISTINCT T.G, T.K FROM T")
	if err != nil {
		t.Fatal(err)
	}
	assertAllocsPerRow(t, "distinct", rows, 0.05, func() {
		if _, err := Exec(db, q); err != nil {
			t.Fatal(err)
		}
	})
}

// TestFilterKernelAllocs pins the batch equality filter: floats are not
// indexable, so the predicate runs through the scan-side selection-vector
// kernel, whose only allocations are the bitset and the gathered output —
// near zero per input row when most rows are filtered out.
func TestFilterKernelAllocs(t *testing.T) {
	const rows = 20000
	db := allocDB(rows)
	q, err := Parse("SELECT T.V FROM T WHERE T.F = 7.5") // 1/32 of rows survive
	if err != nil {
		t.Fatal(err)
	}
	assertAllocsPerRow(t, "batch-filter", rows, 0.05, func() {
		if _, err := Exec(db, q); err != nil {
			t.Fatal(err)
		}
	})
}

// TestBatchAllocsNotWorseThanEncoded compares steady-state allocations of the
// batch kernels against the integer-at-a-time encoded path on the same
// statements: vectorizing must not buy speed with extra garbage, so the batch
// execution may allocate at most what the encoded one does (plus a fixed
// per-statement scratch slack for the selection vectors).
func TestBatchAllocsNotWorseThanEncoded(t *testing.T) {
	const rows = 20000
	db := allocDB(rows)
	for _, tc := range []struct{ label, sql string }{
		{"group-by", "SELECT T.G, COUNT(T.V) AS n FROM T GROUP BY T.G"},
		{"hash-join", "SELECT COUNT(T.V) AS n FROM T, U WHERE U.K = T.K"},
		{"distinct", "SELECT DISTINCT T.G, T.K FROM T"},
	} {
		q, err := Parse(tc.sql)
		if err != nil {
			t.Fatal(err)
		}
		runBatch := func() {
			if _, err := Exec(db, q); err != nil {
				t.Fatal(err)
			}
		}
		runEncoded := func() {
			if _, err := ExecEncoded(db, q); err != nil {
				t.Fatal(err)
			}
		}
		runBatch()
		runEncoded() // warm cached remap tables for both modes
		batch := testing.AllocsPerRun(10, runBatch)
		encoded := testing.AllocsPerRun(10, runEncoded)
		t.Logf("%s: batch %.0f allocs/op, encoded %.0f allocs/op", tc.label, batch, encoded)
		// The batch executor may add a handful of fixed scratch allocations
		// (selection bitset, packed indexes, probe gather buffer) but nothing
		// per row.
		const scratchSlack = 8
		if batch > encoded+scratchSlack {
			t.Errorf("%s: batch path allocates %.0f/op vs encoded %.0f/op — more than fixed scratch slack %d",
				tc.label, batch, encoded, scratchSlack)
		}
	}
}
