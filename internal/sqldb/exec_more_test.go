package sqldb

import (
	"fmt"
	"strings"
	"testing"

	"kwagg/internal/relation"
	"kwagg/internal/sqlast"
)

// TestJoinOrderingCorrectness builds a chain schema with deliberately
// lopsided table sizes and checks the greedy ordering returns the same
// result as the declared order would.
func TestJoinOrderingCorrectness(t *testing.T) {
	db := relation.NewDatabase("chain")
	a := db.AddSchema(relation.NewSchema("A", "id INT", "b INT").Key("id"))
	bt := db.AddSchema(relation.NewSchema("B", "id INT", "c INT").Key("id"))
	c := db.AddSchema(relation.NewSchema("C", "id INT", "v").Key("id"))
	for i := 1; i <= 100; i++ {
		a.MustInsert(int64(i), int64(i%10+1))
	}
	for i := 1; i <= 10; i++ {
		bt.MustInsert(int64(i), int64(i%3+1))
	}
	for i := 1; i <= 3; i++ {
		c.MustInsert(int64(i), fmt.Sprintf("v%d", i))
	}
	// Every FROM permutation must produce the same multiset of rows.
	perms := []string{
		"FROM A, B, C",
		"FROM C, B, A",
		"FROM B, C, A",
	}
	var first []string
	for _, from := range perms {
		res := run(t, db, "SELECT A.id, C.v "+from+" WHERE A.b = B.id AND B.c = C.id")
		got := rowsAsStrings(res)
		if first == nil {
			first = got
			if len(first) != 100 {
				t.Fatalf("expected 100 joined rows, got %d", len(first))
			}
			continue
		}
		if len(got) != len(first) {
			t.Fatalf("permutation %q changed the result size", from)
		}
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("permutation %q changed the result", from)
			}
		}
	}
}

// TestDisconnectedFromIsCrossProduct: sources with no connecting predicate
// multiply.
func TestDisconnectedFromIsCrossProduct(t *testing.T) {
	res := run(t, uniDB(t), "SELECT S.Sid, F.Fname FROM Student S, Faculty F")
	if len(res.Rows) != 3 {
		t.Fatalf("3 students x 1 faculty = 3 rows, got %d", len(res.Rows))
	}
}

func TestColComparePredRoundTrip(t *testing.T) {
	sql := "SELECT S1.Sid FROM Student S1, Student S2 WHERE S1.Age < S2.Age"
	q, err := Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := q.Where[0].(sqlast.ColComparePred); !ok {
		t.Fatalf("expected ColComparePred, got %T", q.Where[0])
	}
	if q.String() != sql {
		t.Errorf("round trip: %s", q.String())
	}
}

// TestColComparePredEquality: the parser normalizes S1.A = S2.A into
// JoinPred, but a programmatically built AST can carry OpEq in a
// ColComparePred, and the executor must agree with the reference
// interpreter's cmpMatches instead of silently dropping every row.
func TestColComparePredEquality(t *testing.T) {
	q := &sqlast.Query{
		Select: []sqlast.SelectItem{{Expr: sqlast.ColExpr{Col: sqlast.Col{Table: "S1", Column: "Sid"}}}},
		From: []sqlast.TableRef{
			{Name: "Student", Alias: "S1"},
			{Name: "Student", Alias: "S2"},
		},
		Where: []sqlast.Pred{sqlast.ColComparePred{
			Left:  sqlast.Col{Table: "S1", Column: "Sid"},
			Op:    sqlast.OpEq,
			Right: sqlast.Col{Table: "S2", Column: "Sid"},
		}},
	}
	res, err := Exec(uniDB(t), q)
	if err != nil {
		t.Fatal(err)
	}
	want := len(run(t, uniDB(t), "SELECT S.Sid FROM Student S").Rows)
	if want == 0 || len(res.Rows) != want {
		t.Fatalf("self-equality kept %d rows, want %d (one per student)", len(res.Rows), want)
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{
		"SELECT x FROM T WHERE x = 'open",
		"SELECT x FROM T WHERE x = $bad",
		"SELECT ; FROM T",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestDeepNesting(t *testing.T) {
	sql := "SELECT MAX(R.n) AS m FROM (SELECT COUNT(X.Sid) AS n FROM " +
		"(SELECT E.Sid, E.Code FROM Enrol E) X GROUP BY X.Code) R"
	res := run(t, uniDB(t), sql)
	if len(res.Rows) != 1 || res.Rows[0][0].(int64) != 3 {
		t.Errorf("three levels of nesting: %v", rowsAsStrings(res))
	}
}

// TestGroupKeysWithNulls: NULL group keys form their own group.
func TestGroupKeysWithNulls(t *testing.T) {
	db := relation.NewDatabase("g")
	tb := db.AddSchema(relation.NewSchema("T", "k", "v INT").Key("k", "v"))
	tb.MustInsert("a", int64(1))
	tb.MustInsert(nil, int64(2))
	tb.MustInsert(nil, int64(3))
	res := run(t, db, "SELECT T.k, COUNT(T.v) AS n FROM T GROUP BY T.k")
	if len(res.Rows) != 2 {
		t.Fatalf("NULL keys group together: %v", rowsAsStrings(res))
	}
}

// TestSubqueryAliasScoping: the outer query sees only the derived table's
// columns under its alias.
func TestSubqueryAliasScoping(t *testing.T) {
	if _, err := ExecSQL(uniDB(t),
		"SELECT E.Grade FROM (SELECT DISTINCT Sid FROM Enrol) E"); err == nil {
		t.Error("columns projected away must be invisible")
	}
}

// TestAggregateIntFloatTyping: SUM over ints stays integral; over floats it
// is a float; AVG is always a float.
func TestAggregateIntFloatTyping(t *testing.T) {
	db := uniDB(t)
	res := run(t, db, "SELECT SUM(S.Age) AS s FROM Student S")
	if _, ok := res.Rows[0][0].(int64); !ok {
		t.Errorf("integer SUM should be int64: %T", res.Rows[0][0])
	}
	res = run(t, db, "SELECT SUM(C.Credit) AS s FROM Course C")
	if _, ok := res.Rows[0][0].(float64); !ok {
		t.Errorf("float SUM should be float64: %T", res.Rows[0][0])
	}
	res = run(t, db, "SELECT AVG(S.Age) AS a FROM Student S")
	if _, ok := res.Rows[0][0].(float64); !ok {
		t.Errorf("AVG should be float64: %T", res.Rows[0][0])
	}
}

func TestExplainPlan(t *testing.T) {
	db := uniDB(t)
	plan, err := ExplainSQL(db,
		"SELECT S.Sname, SUM(C.Credit) AS s FROM Student S, Enrol E, Course C "+
			"WHERE E.Sid=S.Sid AND E.Code=C.Code AND S.Sname CONTAINS 'Green' GROUP BY S.Sname")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Shape != "group-by" {
		t.Errorf("shape: %s", plan.Shape)
	}
	if len(plan.Sources) != 3 || len(plan.Steps) != 2 {
		t.Fatalf("plan structure: %+v", plan)
	}
	// The contains-filter is pushed into the Student scan.
	pushed := false
	for _, s := range plan.Sources {
		if s.Alias == "S" && len(s.Pushed) == 1 {
			pushed = true
		}
	}
	if !pushed {
		t.Errorf("filter not pushed down:\n%s", plan)
	}
	// Both joins are hash joins.
	for _, st := range plan.Steps {
		if st.Strategy != "hash join" || len(st.On) == 0 {
			t.Errorf("join step: %+v", st)
		}
	}
	text := plan.String()
	for _, frag := range []string{"group-by", "scan Student as S", "hash join"} {
		if !strings.Contains(text, frag) {
			t.Errorf("plan text missing %q:\n%s", frag, text)
		}
	}
}

func TestExplainCrossJoinAndDerived(t *testing.T) {
	db := uniDB(t)
	plan, err := ExplainSQL(db,
		"SELECT COUNT(T.Lid) AS n FROM Faculty F, (SELECT DISTINCT Lid, Code FROM Teach) T")
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 1 || plan.Steps[0].Strategy != "cross join" {
		t.Errorf("disconnected sources should cross join: %+v", plan.Steps)
	}
	derived := false
	for _, s := range plan.Sources {
		if s.Derived != nil && s.Name == "(subquery)" {
			derived = true
		}
	}
	if !derived {
		t.Errorf("derived table plan missing:\n%s", plan)
	}
}
