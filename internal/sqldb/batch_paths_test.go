package sqldb

import (
	"context"
	"testing"
)

// threeWayBlocks runs sql over the multi-block frozen database through the
// batch, encoded and scan-only reference generations and requires
// byte-identical rendered results (after the canonical sort — these
// statements are deterministic, the sort just normalizes map-order ties the
// contract already allows at the top level).
func threeWayBlocks(t *testing.T, sql string) {
	t.Helper()
	db := fuzzBlockDB()
	q, err := Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	batch, _, err := ExecOpts(context.Background(), db, q, ExecConfig{})
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	encoded, _, err := ExecOpts(context.Background(), db, q, ExecConfig{NoBatch: true})
	if err != nil {
		t.Fatalf("encoded: %v", err)
	}
	reference, err := ExecNoIndex(db, q)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	batch.SortRows()
	encoded.SortRows()
	reference.SortRows()
	if batch.String() != encoded.String() {
		t.Errorf("batch diverged from encoded:\n%s\nbatch:\n%s\nencoded:\n%s", sql, batch, encoded)
	}
	if encoded.String() != reference.String() {
		t.Errorf("encoded diverged from reference:\n%s\nencoded:\n%s\nreference:\n%s", sql, encoded, reference)
	}
}

// TestBatchOperatorPathsThreeWay drives the executor paths the workload
// suites don't reach onto multi-block inputs, each through all three kernel
// generations: the packed 3-key join, the map-slot grouping ladder rung
// (high-cardinality key on a small filtered input), COUNT over a
// NULL-carrying column (bitset complement on base scans, boxed on derived
// rowsets), DISTINCT's ladder, and ORDER BY + LIMIT over grouped output.
func TestBatchOperatorPathsThreeWay(t *testing.T) {
	for name, sql := range map[string]string{
		// Three encoded equality keys: the packed-buffer join build/probe.
		"join-3key": "SELECT COUNT(E.Sid) AS n FROM Enrol E, Enrol F " +
			"WHERE E.Sid = F.Sid AND E.Code = F.Code AND E.Grade = F.Grade",
		// Two encoded keys: the packed uint64 pair kernels.
		"join-2key": "SELECT COUNT(E.Sid) AS n FROM Enrol E, Enrol F " +
			"WHERE E.Code = F.Code AND E.Grade = F.Grade GROUP BY E.Grade",
		// ~285 filtered rows grouped by a 2565-entry dictionary: the dense
		// slot table loses to the map rung on the derived (strided) input.
		"group-map-slots": "SELECT S.Sid, COUNT(S.Sid) AS n FROM Student S " +
			"WHERE S.Age = 20 GROUP BY S.Sid",
		// Age carries a NULL bitset: COUNT must add the bit complement, not
		// the group size.
		"count-null-bitset": "SELECT S.Sname, COUNT(S.Age) AS c FROM Student S GROUP BY S.Sname",
		// Same COUNT on a derived rowset: no column view, boxed NULL checks.
		"count-null-derived": "SELECT D.Sname, COUNT(D.Age) AS c " +
			"FROM (SELECT S.Sname, S.Age FROM Student S) D GROUP BY D.Sname",
		// Multi-key grouping with NULLs in one key.
		"group-2key": "SELECT S.Sname, S.Age, COUNT(S.Sid) AS n FROM Student S GROUP BY S.Sname, S.Age",
		// DISTINCT ladder: single key and packed pair over multi-block input.
		"distinct-1key": "SELECT DISTINCT S.Sname FROM Student S",
		"distinct-2key": "SELECT DISTINCT E.Code, E.Grade FROM Enrol E",
		// Grouped output ordered and truncated.
		"order-limit": "SELECT S.Sname, COUNT(S.Sid) AS n FROM Student S " +
			"GROUP BY S.Sname ORDER BY n DESC LIMIT 5",
		// MIN/MAX/SUM/AVG over the NULL-carrying column, grouped.
		"aggregates-null": "SELECT E.Code, MIN(E.Grade) AS mn, MAX(E.Grade) AS mx, " +
			"SUM(E.Grade) AS s, AVG(E.Grade) AS a FROM Enrol E GROUP BY E.Code",
	} {
		t.Run(name, func(t *testing.T) { threeWayBlocks(t, sql) })
	}
}
