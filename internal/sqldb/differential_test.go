// Differential suite for the value-index fast path: every query the seed
// workloads generate must produce row-for-row the same Result through the
// index-accelerated executor (Exec) as through the scan-only reference path
// (ExecNoIndex). This file is an external test package because it drives the
// executor through internal/experiments, which itself imports sqldb.
package sqldb_test

import (
	"reflect"
	"testing"

	"kwagg/internal/dataset/acmdl"
	"kwagg/internal/dataset/tpch"
	"kwagg/internal/experiments"
	"kwagg/internal/relation"
	"kwagg/internal/sqldb"
)

// diffQueries runs every interpretation of every keyword query through both
// executors and compares the sorted results.
func diffQueries(t *testing.T, s *experiments.Setup, queries []experiments.Query) {
	t.Helper()
	interpretations := 0
	for _, q := range queries {
		ins, err := s.Ours.Interpret(q.Keywords, 0)
		if err != nil {
			t.Fatalf("%s %s: %v", q.ID, q.Keywords, err)
		}
		for i, in := range ins {
			indexed, err := sqldb.Exec(s.Ours.Data, in.SQL)
			if err != nil {
				t.Fatalf("%s interpretation %d: indexed exec: %v", q.ID, i, err)
			}
			scanned, err := sqldb.ExecNoIndex(s.Ours.Data, in.SQL)
			if err != nil {
				t.Fatalf("%s interpretation %d: scan exec: %v", q.ID, i, err)
			}
			indexed.SortRows()
			scanned.SortRows()
			if !reflect.DeepEqual(indexed, scanned) {
				t.Errorf("%s interpretation %d diverged:\nSQL: %s\nindexed: %+v\nscan:    %+v",
					q.ID, i, in.SQL, indexed, scanned)
			}
			interpretations++
		}
	}
	t.Logf("%s: %d interpretations compared", s.Label, interpretations)
}

func TestDifferentialUniversity(t *testing.T) {
	s, err := experiments.NewUniversity()
	if err != nil {
		t.Fatal(err)
	}
	queries := []experiments.Query{
		{ID: "U1", Keywords: "Green SUM Credit"},
		{ID: "U2", Keywords: "COUNT Student GROUPBY Course"},
		{ID: "U3", Keywords: "AVG Credit"},
		{ID: "U4", Keywords: "MAX Price"},
		{ID: "U5", Keywords: "COUNT Lecturer GROUPBY Department"},
	}
	diffQueries(t, s, queries)
}

func TestDifferentialTPCH(t *testing.T) {
	s, err := experiments.NewTPCH(tpch.Small())
	if err != nil {
		t.Fatal(err)
	}
	diffQueries(t, s, experiments.QueriesTPCH())
}

func TestDifferentialACMDL(t *testing.T) {
	s, err := experiments.NewACMDL(acmdl.Small())
	if err != nil {
		t.Fatal(err)
	}
	diffQueries(t, s, experiments.QueriesACMDL())
}

func TestDifferentialTPCHUnnormalized(t *testing.T) {
	s, err := experiments.NewTPCHUnnormalized(tpch.Small())
	if err != nil {
		t.Fatal(err)
	}
	diffQueries(t, s, experiments.QueriesTPCH())
}

func TestDifferentialACMDLUnnormalized(t *testing.T) {
	s, err := experiments.NewACMDLUnnormalized(acmdl.Small())
	if err != nil {
		t.Fatal(err)
	}
	diffQueries(t, s, experiments.QueriesACMDL())
}

// TestDifferentialEqualityCorners hand-builds rows around the index's edge
// cases — NULLs, a literal "NULL" string (which shares the NULL rows' index
// key after Format), int vs float constants — and checks Exec == ExecNoIndex
// on direct equality filters.
func TestDifferentialEqualityCorners(t *testing.T) {
	db := relation.NewDatabase("corners")
	item := db.AddSchema(relation.NewSchema("Item", "Id", "Name", "Qty INT", "Price FLOAT").Key("Id"))
	item.MustInsert("i1", "widget", int64(5), 1.5)
	item.MustInsert("i2", "NULL", int64(5), 2.5) // the string "NULL", not a missing value
	item.MustInsert("i3", nil, int64(7), 1.5)    // a genuinely missing name
	item.MustInsert("i4", "widget", nil, nil)    // missing numbers
	item.MustInsert("i5", "widget", int64(5), 1.5)
	db.Freeze()

	for _, sql := range []string{
		// string constant: index path
		"SELECT I.Id FROM Item I WHERE I.Name = 'widget'",
		// the literal string "NULL" must not match the NULL row i3
		"SELECT I.Id FROM Item I WHERE I.Name = 'NULL'",
		// int constant: index path; NULL Qty row i4 must not match
		"SELECT I.Id FROM Item I WHERE I.Qty = 5",
		// unmatched constant: empty either way
		"SELECT I.Id FROM Item I WHERE I.Qty = 99",
		// float constant: not indexable, but both paths must still agree
		"SELECT I.Id FROM Item I WHERE I.Price = 1.5",
	} {
		q, err := sqldb.Parse(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		indexed, err := sqldb.Exec(db, q)
		if err != nil {
			t.Fatalf("%s: indexed exec: %v", sql, err)
		}
		scanned, err := sqldb.ExecNoIndex(db, q)
		if err != nil {
			t.Fatalf("%s: scan exec: %v", sql, err)
		}
		indexed.SortRows()
		scanned.SortRows()
		if !reflect.DeepEqual(indexed, scanned) {
			t.Errorf("%s diverged:\nindexed: %+v\nscan:    %+v", sql, indexed, scanned)
		}
	}

	// Pin the specific trap: Format(nil) == "NULL" == Format("NULL"), so the
	// index bucket for the constant 'NULL' contains row i3; the executor must
	// filter it back out.
	q, err := sqldb.Parse("SELECT I.Id FROM Item I WHERE I.Name = 'NULL'")
	if err != nil {
		t.Fatal(err)
	}
	res, err := sqldb.Exec(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "i2" {
		t.Errorf("'NULL' string filter: %+v (want only i2)", res.Rows)
	}
}
