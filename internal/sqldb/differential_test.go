// Differential suite for the accelerated execution paths: every query the
// seed workloads generate must produce row-for-row the same Result through
// all three executor generations — the vectorized batch kernels (Exec, the
// default), the integer-at-a-time encoded kernels (ExecEncoded, the PR4
// path) and the scan-only formatted-string reference (ExecNoIndex). This
// file is an external test package because it drives the executor through
// internal/experiments, which itself imports sqldb.
package sqldb_test

import (
	"math"
	"reflect"
	"testing"

	"kwagg"
	"kwagg/internal/dataset/acmdl"
	"kwagg/internal/dataset/tpch"
	"kwagg/internal/experiments"
	"kwagg/internal/relation"
	"kwagg/internal/sqlast"
	"kwagg/internal/sqldb"
)

// diffThreeWay executes one statement through the batch, encoded and
// reference paths and fails unless the sorted results are value-identical
// and the rendered answer sets byte-identical.
func diffThreeWay(t *testing.T, db *relation.Database, label string, q *sqlast.Query) {
	t.Helper()
	batch, err := sqldb.Exec(db, q)
	if err != nil {
		t.Fatalf("%s: batch exec: %v", label, err)
	}
	encoded, err := sqldb.ExecEncoded(db, q)
	if err != nil {
		t.Fatalf("%s: encoded exec: %v", label, err)
	}
	scanned, err := sqldb.ExecNoIndex(db, q)
	if err != nil {
		t.Fatalf("%s: scan exec: %v", label, err)
	}
	batch.SortRows()
	encoded.SortRows()
	scanned.SortRows()
	if !reflect.DeepEqual(batch, encoded) {
		t.Errorf("%s: batch diverged from encoded:\nSQL: %s\nbatch:   %+v\nencoded: %+v",
			label, q, batch, encoded)
	}
	if !reflect.DeepEqual(encoded, scanned) {
		t.Errorf("%s: encoded diverged from reference:\nSQL: %s\nencoded: %+v\nscan:    %+v",
			label, q, encoded, scanned)
	}
	if b, e, s := batch.String(), encoded.String(), scanned.String(); b != e || e != s {
		t.Errorf("%s: rendered answer sets differ:\nbatch:\n%s\nencoded:\n%s\nscan:\n%s", label, b, e, s)
	}
}

// diffQueries runs every interpretation of every keyword query through the
// three executor paths and compares the sorted results.
func diffQueries(t *testing.T, s *experiments.Setup, queries []experiments.Query) {
	t.Helper()
	interpretations := 0
	for _, q := range queries {
		ins, err := s.Ours.Interpret(q.Keywords, 0)
		if err != nil {
			t.Fatalf("%s %s: %v", q.ID, q.Keywords, err)
		}
		for i, in := range ins {
			diffThreeWay(t, s.Ours.Data, q.ID, in.SQL)
			interpretations++
			_ = i
		}
	}
	t.Logf("%s: %d interpretations compared three ways", s.Label, interpretations)
}

func TestDifferentialUniversity(t *testing.T) {
	s, err := experiments.NewUniversity()
	if err != nil {
		t.Fatal(err)
	}
	queries := []experiments.Query{
		{ID: "U1", Keywords: "Green SUM Credit"},
		{ID: "U2", Keywords: "COUNT Student GROUPBY Course"},
		{ID: "U3", Keywords: "AVG Credit"},
		{ID: "U4", Keywords: "MAX Price"},
		{ID: "U5", Keywords: "COUNT Lecturer GROUPBY Department"},
	}
	diffQueries(t, s, queries)
}

func TestDifferentialTPCH(t *testing.T) {
	s, err := experiments.NewTPCH(tpch.Small())
	if err != nil {
		t.Fatal(err)
	}
	diffQueries(t, s, experiments.QueriesTPCH())
}

func TestDifferentialACMDL(t *testing.T) {
	s, err := experiments.NewACMDL(acmdl.Small())
	if err != nil {
		t.Fatal(err)
	}
	diffQueries(t, s, experiments.QueriesACMDL())
}

func TestDifferentialTPCHUnnormalized(t *testing.T) {
	s, err := experiments.NewTPCHUnnormalized(tpch.Small())
	if err != nil {
		t.Fatal(err)
	}
	diffQueries(t, s, experiments.QueriesTPCH())
}

func TestDifferentialACMDLUnnormalized(t *testing.T) {
	s, err := experiments.NewACMDLUnnormalized(acmdl.Small())
	if err != nil {
		t.Fatal(err)
	}
	diffQueries(t, s, experiments.QueriesACMDL())
}

// TestDifferentialDatasetWorkloadsThreeWay replays every bundled dataset
// workload (kwagg.DatasetWorkloads, the same map the chaos and plan-verifier
// suites iterate) and checks that each interpretation's answer set is
// byte-identical across the batch, encoded and reference paths.
func TestDifferentialDatasetWorkloadsThreeWay(t *testing.T) {
	setups := map[string]func() (*experiments.Setup, error){
		"university":   experiments.NewUniversity,
		"tpch":         func() (*experiments.Setup, error) { return experiments.NewTPCH(tpch.Small()) },
		"tpch-denorm":  func() (*experiments.Setup, error) { return experiments.NewTPCHUnnormalized(tpch.Small()) },
		"acmdl":        func() (*experiments.Setup, error) { return experiments.NewACMDL(acmdl.Small()) },
		"acmdl-denorm": func() (*experiments.Setup, error) { return experiments.NewACMDLUnnormalized(acmdl.Small()) },
	}
	workloads := kwagg.DatasetWorkloads()
	for name, queries := range workloads {
		build, ok := setups[name]
		if !ok {
			t.Fatalf("workload %q has no differential setup — extend the map", name)
		}
		name, queries := name, queries
		t.Run(name, func(t *testing.T) {
			s, err := build()
			if err != nil {
				t.Fatal(err)
			}
			interpretations := 0
			for _, kw := range queries {
				ins, err := s.Ours.Interpret(kw, 0)
				if err != nil {
					t.Fatalf("%s: %v", kw, err)
				}
				for _, in := range ins {
					diffThreeWay(t, s.Ours.Data, name+"/"+kw, in.SQL)
					interpretations++
				}
			}
			t.Logf("%s: %d interpretations compared three ways", name, interpretations)
		})
	}
}

// TestDifferentialEqualityCorners hand-builds rows around the index's edge
// cases — NULLs, a literal "NULL" string (which shares the NULL rows' index
// key after Format), int vs float constants — and checks all three executor
// paths agree on direct equality filters.
func TestDifferentialEqualityCorners(t *testing.T) {
	db := relation.NewDatabase("corners")
	item := db.AddSchema(relation.NewSchema("Item", "Id", "Name", "Qty INT", "Price FLOAT").Key("Id"))
	item.MustInsert("i1", "widget", int64(5), 1.5)
	item.MustInsert("i2", "NULL", int64(5), 2.5) // the string "NULL", not a missing value
	item.MustInsert("i3", nil, int64(7), 1.5)    // a genuinely missing name
	item.MustInsert("i4", "widget", nil, nil)    // missing numbers
	item.MustInsert("i5", "widget", int64(5), 1.5)
	item.MustInsert("i6", "widget", int64(0), 0.0)
	item.MustInsert("i7", "widget", int64(0), math.Copysign(0, -1)) // negative zero
	db.Freeze()

	for _, sql := range []string{
		// string constant: index path
		"SELECT I.Id FROM Item I WHERE I.Name = 'widget'",
		// the literal string "NULL" must not match the NULL row i3
		"SELECT I.Id FROM Item I WHERE I.Name = 'NULL'",
		// int constant: index path; NULL Qty row i4 must not match
		"SELECT I.Id FROM Item I WHERE I.Qty = 5",
		// unmatched constant: empty either way
		"SELECT I.Id FROM Item I WHERE I.Qty = 99",
		// float constant: not indexable, but the dictionary-ID kernel path
		// answers it (with boxed re-verification) and all paths must agree
		"SELECT I.Id FROM Item I WHERE I.Price = 1.5",
		// float zero: Format splits "0"/"-0" while Compare does not, so the
		// kernel path must decline (dictableEq) and fall back to the Compare
		// scan — rows i6 and i7 both match on every path
		"SELECT I.Id FROM Item I WHERE I.Price = 0.0",
	} {
		q, err := sqldb.Parse(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		diffThreeWay(t, db, sql, q)
	}

	// Pin the specific trap: Format(nil) == "NULL" == Format("NULL"), so the
	// index bucket for the constant 'NULL' contains row i3; the executor must
	// filter it back out.
	q, err := sqldb.Parse("SELECT I.Id FROM Item I WHERE I.Name = 'NULL'")
	if err != nil {
		t.Fatal(err)
	}
	res, err := sqldb.Exec(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "i2" {
		t.Errorf("'NULL' string filter: %+v (want only i2)", res.Rows)
	}
}
