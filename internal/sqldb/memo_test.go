package sqldb

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kwagg/internal/dataset/university"
	"kwagg/internal/relation"
)

func memoRowset(rows, cols int) *rowset {
	rs := &rowset{cols: make([]boundCol, cols)}
	for i := 0; i < cols; i++ {
		rs.cols[i] = boundCol{name: fmt.Sprintf("c%d", i)}
	}
	for r := 0; r < rows; r++ {
		tu := make(relation.Tuple, cols)
		for c := range tu {
			tu[c] = int64(r*cols + c)
		}
		rs.rows = append(rs.rows, tu)
	}
	return rs
}

func TestNewMemoDisabled(t *testing.T) {
	if m := NewMemo(0); m != nil {
		t.Errorf("NewMemo(0) = %v, want nil", m)
	}
	if m := NewMemo(-1); m != nil {
		t.Errorf("NewMemo(-1) = %v, want nil", m)
	}
}

func TestMemoLRUEviction(t *testing.T) {
	// Each 2x2 rowset costs 2*2+1 = 5 cells; a 10-cell budget holds two.
	m := NewMemo(10)
	for _, key := range []string{"a", "b"} {
		_, claim, err := m.acquire(nil, key)
		if err != nil || claim == nil {
			t.Fatalf("acquire(%q) = claim %v, err %v", key, claim, err)
		}
		claim.publish(memoRowset(2, 2))
	}
	if m.Len() != 2 || m.UsedCells() != 10 {
		t.Fatalf("after two publishes: Len=%d UsedCells=%d, want 2/10", m.Len(), m.UsedCells())
	}
	// Touch "a" so "b" is the LRU victim when "c" lands.
	if rs, claim, _ := m.acquire(nil, "a"); rs == nil || claim != nil {
		t.Fatalf("acquire(a) should hit")
	}
	_, claim, _ := m.acquire(nil, "c")
	claim.publish(memoRowset(2, 2))
	if m.Len() != 2 || m.UsedCells() != 10 {
		t.Fatalf("after eviction: Len=%d UsedCells=%d, want 2/10", m.Len(), m.UsedCells())
	}
	if rs, claim, _ := m.acquire(nil, "b"); rs != nil || claim == nil {
		t.Errorf("b should have been evicted (got rs=%v claim=%v)", rs, claim)
	} else {
		claim.fail()
	}
	if rs, claim, _ := m.acquire(nil, "a"); rs == nil || claim != nil {
		t.Errorf("a should still be cached")
	}
}

func TestMemoOversizedEntryNotCached(t *testing.T) {
	m := NewMemo(3) // smaller than any real rowset's cost
	_, claim, err := m.acquire(nil, "big")
	if err != nil || claim == nil {
		t.Fatalf("acquire = claim %v, err %v", claim, err)
	}
	claim.publish(memoRowset(4, 4))
	if m.Len() != 0 || m.UsedCells() != 0 {
		t.Errorf("oversized entry cached: Len=%d UsedCells=%d", m.Len(), m.UsedCells())
	}
	if rs, claim, _ := m.acquire(nil, "big"); rs != nil || claim == nil {
		t.Errorf("oversized key should miss again (rs=%v claim=%v)", rs, claim)
	}
}

func TestMemoSingleflight(t *testing.T) {
	m := NewMemo(1 << 16)
	want := memoRowset(3, 2)
	var claims atomic.Int32
	var wg sync.WaitGroup
	results := make([]*rowset, 16)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rs, claim, err := m.acquire(nil, "shared")
			if err != nil {
				t.Errorf("acquire: %v", err)
				return
			}
			if claim != nil {
				claims.Add(1)
				time.Sleep(2 * time.Millisecond) // let waiters pile up
				claim.publish(want)
				rs = want
			}
			results[i] = rs
		}(i)
	}
	wg.Wait()
	if claims.Load() != 1 {
		t.Errorf("%d goroutines claimed the key, want exactly 1", claims.Load())
	}
	for i, rs := range results {
		if rs != want {
			t.Errorf("goroutine %d got %p, want the shared rowset %p", i, rs, want)
		}
	}
}

func TestMemoFailedComputeRetries(t *testing.T) {
	m := NewMemo(1 << 16)
	_, claim, err := m.acquire(nil, "flaky")
	if err != nil || claim == nil {
		t.Fatalf("acquire = claim %v, err %v", claim, err)
	}
	waiter := make(chan struct{})
	go func() {
		defer close(waiter)
		// Blocks until the claim fails, then must be told to compute
		// without caching: no rowset, no claim, no error.
		rs, c, err := m.acquire(nil, "flaky")
		if rs != nil || c != nil || err != nil {
			t.Errorf("waiter after fail: rs=%v claim=%v err=%v", rs, c, err)
		}
	}()
	time.Sleep(time.Millisecond)
	claim.fail()
	<-waiter
	// The key was dropped, so a later request gets a fresh claim.
	rs, c, err := m.acquire(nil, "flaky")
	if rs != nil || c == nil || err != nil {
		t.Fatalf("fresh acquire after fail: rs=%v claim=%v err=%v", rs, c, err)
	}
	c.publish(memoRowset(1, 1))
	if m.Len() != 1 {
		t.Errorf("Len = %d after successful retry, want 1", m.Len())
	}
}

func TestMemoAcquireHonorsContext(t *testing.T) {
	m := NewMemo(1 << 16)
	_, claim, _ := m.acquire(nil, "held")
	defer claim.publish(memoRowset(1, 1))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := m.acquire(ctx, "held"); err != context.Canceled {
		t.Errorf("acquire on cancelled ctx = %v, want context.Canceled", err)
	}
}

// TestExecMemoContextReusesFragments executes statements sharing a join shape
// through one memo and checks both the hit accounting and that memoized
// results stay identical to the reference path.
func TestExecMemoContextReusesFragments(t *testing.T) {
	db := university.New()
	db.Freeze()
	m := NewMemo(1 << 20)
	sqls := []string{
		"SELECT C.Code, COUNT(S.SName) AS n FROM Student S, Enrol E, Course C " +
			"WHERE S.Sid = E.Sid AND E.Code = C.Code GROUP BY C.Code",
		"SELECT C.Code, COUNT(DISTINCT S.SName) AS n FROM Student S, Enrol E, Course C " +
			"WHERE S.Sid = E.Sid AND E.Code = C.Code GROUP BY C.Code",
	}
	totalHits := 0
	for pass := 0; pass < 2; pass++ {
		for _, sql := range sqls {
			q, err := Parse(sql)
			if err != nil {
				t.Fatal(err)
			}
			got, st, err := ExecMemoContext(context.Background(), db, q, m)
			if err != nil {
				t.Fatalf("pass %d %s: %v", pass, sql, err)
			}
			totalHits += st.Hits
			want, err := ExecNoIndex(db, q)
			if err != nil {
				t.Fatal(err)
			}
			got.SortRows()
			want.SortRows()
			if got.String() != want.String() {
				t.Errorf("pass %d %s diverged:\nmemo:\n%s\nref:\n%s", pass, sql, got, want)
			}
		}
	}
	if totalHits == 0 {
		t.Error("no memo hits across statements sharing join fragments")
	}
	if m.Len() == 0 {
		t.Error("memo cached nothing")
	}
	// A nil memo must degrade to plain execution.
	q, _ := Parse(sqls[0])
	res, st, err := ExecMemoContext(context.Background(), db, q, nil)
	if err != nil || res == nil {
		t.Fatalf("nil memo: %v, %v", res, err)
	}
	if st.Hits != 0 || st.Misses != 0 {
		t.Errorf("nil memo stats = %+v, want zeros", st)
	}
}
