package sqldb

import (
	"bytes"
	"testing"

	"kwagg/internal/relation"
)

// oldAppendFormatted is the pre-optimization key encoding: materialize the
// Format string, then append its length and bytes. appendFormatted must stay
// byte-identical to it — hash buckets and join groups are keyed on these
// bytes, so any divergence silently changes results.
func oldAppendFormatted(buf []byte, v relation.Value) []byte {
	s := relation.Format(v)
	buf = appendLE32(buf, uint32(len(s)))
	return append(buf, s...)
}

func TestAppendFormattedKeyBytes(t *testing.T) {
	values := []relation.Value{
		nil,
		relation.Int(0), relation.Int(-99), relation.Int(123456789),
		relation.Float(2.5), relation.Float(-0.125),
		relation.Str(""), relation.Str("Green"), relation.Str("a|b|c"),
	}
	var got, want []byte
	for _, v := range values {
		got = appendFormatted(got, v)
		want = oldAppendFormatted(want, v)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("appendFormatted diverges from the length-prefixed Format encoding:\n got %q\nwant %q", got, want)
	}
}

// TestAppendJoinKeyBytes pins the full join-key builder, NULL short-circuit
// included, against the old per-value encoding.
func TestAppendJoinKeyBytes(t *testing.T) {
	row := relation.Tuple{relation.Int(7), relation.Str("Green"), relation.Float(1.5)}
	got, ok := appendJoinKey(nil, row, []int{0, 1, 2})
	if !ok {
		t.Fatal("appendJoinKey reported NULL on a NULL-free row")
	}
	var want []byte
	for _, v := range row {
		want = oldAppendFormatted(want, v)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("appendJoinKey = %q, want %q", got, want)
	}
	if _, ok := appendJoinKey(nil, relation.Tuple{relation.Int(7), nil}, []int{0, 1}); ok {
		t.Fatal("appendJoinKey must report false for a NULL key value")
	}
}

// TestAppendFormattedNoAlloc verifies the optimization holds: formatting an
// integer key into a buffer with capacity allocates nothing (the old path
// allocated the Format string every row).
func TestAppendFormattedNoAlloc(t *testing.T) {
	buf := make([]byte, 0, 64)
	v := relation.Int(123456) // boxed once, outside the measured loop
	if n := testing.AllocsPerRun(100, func() {
		buf = appendFormatted(buf[:0], v)
	}); n != 0 {
		t.Errorf("appendFormatted(int) allocates %.1f times per run", n)
	}
}
