package sqldb

import (
	"fmt"
	"strings"

	"kwagg/internal/relation"
	"kwagg/internal/sqlast"
)

// Plan describes how the executor would evaluate a query: the sources with
// their cardinalities, the join order it picks, and which predicates are
// pushed below the joins. It exists for debugging and for the CLI's \plan
// command; building it runs the same planning code paths as Exec but
// evaluates only derived tables' plans, never the data.
type Plan struct {
	Sources []PlanSource
	Steps   []PlanStep
	Post    []string // predicates applied after all joins
	Shape   string   // "aggregate", "group-by", or "projection"
}

// PlanSource is one FROM entry.
type PlanSource struct {
	Alias   string
	Name    string // base relation name, or "(subquery)"
	Rows    int
	Encoded bool     // rows carry the frozen table's dictionary encoding
	Pushed  []string // predicates evaluated while scanning this source
	Derived *Plan    // the plan of a derived table
}

// PlanStep is one join in the chosen order.
type PlanStep struct {
	Alias    string
	Strategy string // "hash join" or "cross join"
	On       []string
}

// String renders the plan as an indented tree.
func (p *Plan) String() string {
	var b strings.Builder
	p.write(&b, "")
	return b.String()
}

func (p *Plan) write(b *strings.Builder, indent string) {
	fmt.Fprintf(b, "%s%s\n", indent, p.Shape)
	for _, s := range p.Sources {
		enc := ""
		if s.Encoded {
			enc = ", dict-encoded"
		}
		fmt.Fprintf(b, "%s  scan %s as %s (%d rows%s)", indent, s.Name, s.Alias, s.Rows, enc)
		if len(s.Pushed) > 0 {
			fmt.Fprintf(b, " filter: %s", strings.Join(s.Pushed, " AND "))
		}
		b.WriteString("\n")
		if s.Derived != nil {
			s.Derived.write(b, indent+"    ")
		}
	}
	for i, st := range p.Steps {
		on := ""
		if len(st.On) > 0 {
			on = " on " + strings.Join(st.On, " AND ")
		}
		fmt.Fprintf(b, "%s  %d. %s %s%s\n", indent, i+1, st.Strategy, st.Alias, on)
	}
	if len(p.Post) > 0 {
		fmt.Fprintf(b, "%s  post-filter: %s\n", indent, strings.Join(p.Post, " AND "))
	}
}

// Explain builds the evaluation plan of q against db without executing the
// joins. Derived tables are planned recursively (their cardinality is the
// cardinality after executing the subquery, so Explain does execute
// subqueries — acceptable for a debugging facility).
func Explain(db *relation.Database, q *sqlast.Query) (*Plan, error) {
	e := &executor{db: db}
	plan := &Plan{}
	switch {
	case len(q.GroupBy) > 0:
		plan.Shape = "group-by"
	case hasAggregate(q):
		plan.Shape = "aggregate"
	default:
		plan.Shape = "projection"
	}

	sources := make([]*rowset, len(q.From))
	for i, tr := range q.From {
		rs, err := e.source(tr)
		if err != nil {
			return nil, err
		}
		sources[i] = rs
		ps := PlanSource{Alias: tr.Alias, Name: tr.Name, Rows: len(rs.rows), Encoded: rs.dicts != nil}
		if tr.Subquery != nil {
			ps.Name = "(subquery)"
			sub, err := Explain(db, tr.Subquery)
			if err != nil {
				return nil, err
			}
			ps.Derived = sub
		}
		plan.Sources = append(plan.Sources, ps)
	}

	consumed := make([]bool, len(q.Where))
	for si, rs := range sources {
		for pi, p := range q.Where {
			if consumed[pi] {
				continue
			}
			if localPred(rs, p) {
				// Report the access path the executor would take: equality
				// constants on a base-table scan hit the value index.
				access := " [scan]"
				if indexableEq(rs, p) {
					access = " [index lookup]"
				}
				plan.Sources[si].Pushed = append(plan.Sources[si].Pushed, p.String()+access)
				consumed[pi] = true
			}
		}
	}

	// Mirror the greedy join ordering of Exec, using cardinalities only.
	remaining := make([]int, 0, len(sources)-1)
	start := 0
	for i := 1; i < len(sources); i++ {
		if len(sources[i].rows) < len(sources[start].rows) {
			start = i
		}
	}
	for i := range sources {
		if i != start {
			remaining = append(remaining, i)
		}
	}
	accCols := append([]boundCol(nil), sources[start].cols...)
	has := func(cols []boundCol, c sqlast.Col) bool {
		n := 0
		for _, bc := range cols {
			if strings.EqualFold(bc.name, c.Column) &&
				(c.Table == "" || strings.EqualFold(bc.table, c.Table)) {
				n++
			}
		}
		return n == 1
	}
	connects := func(src *rowset) bool {
		for pi, p := range q.Where {
			if consumed[pi] {
				continue
			}
			jp, ok := p.(sqlast.JoinPred)
			if !ok {
				continue
			}
			if (has(accCols, jp.Left) && src.has(jp.Right)) || (has(accCols, jp.Right) && src.has(jp.Left)) {
				return true
			}
		}
		return false
	}
	for len(remaining) > 0 {
		pick, pickPos := -1, -1
		for pos, idx := range remaining {
			if !connects(sources[idx]) {
				continue
			}
			if pick < 0 || len(sources[idx].rows) < len(sources[pick].rows) {
				pick, pickPos = idx, pos
			}
		}
		strategy := "hash join"
		if pick < 0 {
			strategy = "cross join"
			for pos, idx := range remaining {
				if pick < 0 || len(sources[idx].rows) < len(sources[pick].rows) {
					pick, pickPos = idx, pos
				}
			}
		}
		src := sources[pick]
		remaining = append(remaining[:pickPos], remaining[pickPos+1:]...)
		step := PlanStep{Alias: q.From[pick].Alias, Strategy: strategy}
		for pi, p := range q.Where {
			if consumed[pi] {
				continue
			}
			jp, ok := p.(sqlast.JoinPred)
			if !ok {
				continue
			}
			if (has(accCols, jp.Left) && src.has(jp.Right)) || (has(accCols, jp.Right) && src.has(jp.Left)) {
				step.On = append(step.On, jp.String())
				consumed[pi] = true
			}
		}
		accCols = append(accCols, src.cols...)
		plan.Steps = append(plan.Steps, step)
	}
	for pi, p := range q.Where {
		if !consumed[pi] {
			plan.Post = append(plan.Post, p.String())
		}
	}
	return plan, nil
}

func hasAggregate(q *sqlast.Query) bool {
	for _, it := range q.Select {
		if _, ok := it.Expr.(sqlast.AggExpr); ok {
			return true
		}
	}
	return false
}

// ExplainSQL parses and plans a statement.
func ExplainSQL(db *relation.Database, sql string) (*Plan, error) {
	q, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return Explain(db, q)
}
