package sqldb

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"kwagg/internal/relation"
)

func TestShardSizeRounding(t *testing.T) {
	cases := []struct {
		in, want int
	}{
		{0, relation.ShardRows},
		{-5, relation.ShardRows},
		{1, relation.BlockSize},
		{1000, relation.BlockSize},
		{relation.BlockSize, relation.BlockSize},
		{relation.BlockSize + 1, 2 * relation.BlockSize},
		{2 * relation.BlockSize, 2 * relation.BlockSize},
	}
	for _, c := range cases {
		e := &executor{shardRows: c.in}
		if got := e.shardSize(); got != c.want {
			t.Errorf("shardSize(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParForCaps(t *testing.T) {
	g := runtime.GOMAXPROCS(0)
	e := &executor{par: 64, shardRows: relation.BlockSize}
	// Two shards of input: at most 2 workers regardless of the target.
	if got := e.parFor(2 * relation.BlockSize); got > 2 || got > g {
		t.Errorf("parFor over 2 shards = %d (GOMAXPROCS %d)", got, g)
	}
	// The reference and encoded modes never parallelize.
	for _, e := range []*executor{{par: 8, noIndex: true}, {par: 8, noBatch: true}, {par: 0}, {par: 1}} {
		if got := e.parFor(1 << 20); got != 1 {
			t.Errorf("parFor on %+v = %d, want 1", e, got)
		}
	}
}

func TestRunPartsDispatchesAll(t *testing.T) {
	e := &executor{par: 4}
	const parts = 57
	var done [parts]atomic.Bool
	err := e.runParts(4, parts, func(p int) error {
		if done[p].Swap(true) {
			return fmt.Errorf("part %d ran twice", p)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for p := range done {
		if !done[p].Load() {
			t.Fatalf("part %d never ran", p)
		}
	}
}

func TestRunPartsLowestErrorWins(t *testing.T) {
	e := &executor{par: 4}
	boom := func(p int) error { return fmt.Errorf("part %d failed", p) }
	// Parts are handed out in ascending order and part 5 always records its
	// error, so the reported error is deterministic under any scheduling.
	err := e.runParts(4, 12, func(p int) error {
		if p >= 5 {
			return boom(p)
		}
		return nil
	})
	if err == nil || err.Error() != "part 5 failed" {
		t.Fatalf("got %v, want part 5's error", err)
	}
}

// TestShardedCancellation pins that a dead context stops a shard-parallel
// statement with the context's error, not a wrong answer.
func TestShardedCancellation(t *testing.T) {
	db := relation.NewDatabase("cancel")
	tb := db.AddSchema(relation.NewSchema("T", "K INT", "V INT").Key("V"))
	for i := 0; i < 4*relation.BlockSize; i++ {
		tb.MustInsert(int64(i%32), int64(i))
	}
	db.Freeze()
	q, err := Parse("SELECT T.K, COUNT(T.V) AS n FROM T WHERE T.K = 7 GROUP BY T.K")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err = ExecOpts(ctx, db, q, ExecConfig{Shards: 4, ShardRows: relation.BlockSize})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestExecShardedMatchesExec is the direct-API smoke check (the full
// differential lives in sharddiff_test.go): same rows, same order.
func TestExecShardedMatchesExec(t *testing.T) {
	db := relation.NewDatabase("smoke")
	tb := db.AddSchema(relation.NewSchema("T", "K INT", "V INT", "F FLOAT").Key("V"))
	for i := 0; i < 3*relation.BlockSize+100; i++ {
		tb.MustInsert(int64(i%13), int64(i), float64(i%7)/3)
	}
	db.Freeze()
	q, err := Parse("SELECT T.K, SUM(T.F) AS s, AVG(T.F) AS a FROM T GROUP BY T.K")
	if err != nil {
		t.Fatal(err)
	}
	want, err := Exec(db, q)
	if err != nil {
		t.Fatal(err)
	}
	e := &executor{db: db, par: 4, shardRows: relation.BlockSize}
	got, err := e.query(q)
	if err != nil {
		t.Fatal(err)
	}
	if want.String() != got.String() {
		t.Fatalf("sharded diverged:\nwant:\n%s\ngot:\n%s", want, got)
	}
	if e.shardRuns == 0 && runtime.GOMAXPROCS(0) > 1 {
		t.Fatal("no kernel pass ran shard-parallel")
	}
}
