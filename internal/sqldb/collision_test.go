package sqldb

import (
	"testing"

	"kwagg/internal/relation"
)

// collisionDB builds rows engineered so the executor's historical hash keys —
// column values joined with a "\x1f" separator — would alias: ("a\x1fb", "c")
// and ("a", "b\x1fc") both rendered as "a\x1fb\x1fc". The length-prefixed and
// dictionary-ID keys must keep them apart.
func collisionDB(freeze bool) *relation.Database {
	db := relation.NewDatabase("collision")
	tt := db.AddSchema(relation.NewSchema("T", "A", "B", "N INT").Key("A", "B"))
	tt.MustInsert("a\x1fb", "c", int64(1))
	tt.MustInsert("a", "b\x1fc", int64(2))
	tt.MustInsert("a\x1fb", "c", int64(3)) // true duplicate of row 1's key
	uu := db.AddSchema(relation.NewSchema("U", "A", "B", "M INT").Key("A", "B"))
	uu.MustInsert("a\x1fb", "c", int64(10))
	if freeze {
		db.Freeze()
	}
	return db
}

// collisionExecs runs sql through every executor path over both frozen
// (dictionary-encoded) and unfrozen data and hands each result to check.
func collisionExecs(t *testing.T, sql string, check func(t *testing.T, path string, res *Result)) {
	t.Helper()
	q, err := Parse(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	for _, tc := range []struct {
		path   string
		freeze bool
		exec   func(*relation.Database) (*Result, error)
	}{
		{"encoded", true, func(db *relation.Database) (*Result, error) { return Exec(db, q) }},
		{"unfrozen", false, func(db *relation.Database) (*Result, error) { return Exec(db, q) }},
		{"noindex", true, func(db *relation.Database) (*Result, error) { return ExecNoIndex(db, q) }},
	} {
		res, err := tc.exec(collisionDB(tc.freeze))
		if err != nil {
			t.Fatalf("%s [%s]: %v", sql, tc.path, err)
		}
		res.SortRows()
		check(t, tc.path, res)
	}
}

func TestGroupByKeySeparatorCollision(t *testing.T) {
	collisionExecs(t, "SELECT T.A, T.B, COUNT(T.N) AS n FROM T GROUP BY T.A, T.B",
		func(t *testing.T, path string, res *Result) {
			if len(res.Rows) != 2 {
				t.Fatalf("[%s] got %d groups, want 2 (colliding keys merged?):\n%s", path, len(res.Rows), res)
			}
			for _, row := range res.Rows {
				a, _ := row[0].(string)
				want := int64(1)
				if a == "a\x1fb" {
					want = 2
				}
				if row[2] != want {
					t.Errorf("[%s] group (%q,%q): count %v, want %d", path, row[0], row[1], row[2], want)
				}
			}
		})
}

func TestDistinctKeySeparatorCollision(t *testing.T) {
	collisionExecs(t, "SELECT DISTINCT T.A, T.B FROM T",
		func(t *testing.T, path string, res *Result) {
			if len(res.Rows) != 2 {
				t.Errorf("[%s] got %d distinct rows, want 2:\n%s", path, len(res.Rows), res)
			}
		})
}

func TestJoinKeySeparatorCollision(t *testing.T) {
	// Only T's ("a\x1fb", "c") rows match U; ("a", "b\x1fc") must not alias.
	collisionExecs(t, "SELECT T.N, U.M FROM T, U WHERE T.A = U.A AND T.B = U.B",
		func(t *testing.T, path string, res *Result) {
			if len(res.Rows) != 2 {
				t.Fatalf("[%s] got %d joined rows, want 2:\n%s", path, len(res.Rows), res)
			}
			for _, row := range res.Rows {
				if n := row[0].(int64); n != 1 && n != 3 {
					t.Errorf("[%s] joined T row N=%v, want 1 or 3 (collision leaked row 2)", path, n)
				}
			}
		})
}

func TestAggregateDistinctSeparatorCollision(t *testing.T) {
	collisionExecs(t, "SELECT COUNT(DISTINCT T.A) AS n FROM T",
		func(t *testing.T, path string, res *Result) {
			if len(res.Rows) != 1 || res.Rows[0][0] != int64(2) {
				t.Errorf("[%s] COUNT(DISTINCT A) = %v, want 2", path, res.Rows)
			}
		})
}
