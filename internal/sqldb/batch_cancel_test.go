package sqldb

import (
	"context"
	"errors"
	"testing"
)

// TestBatchCancellationMidBlock pins the batch kernels' cancellation
// responsiveness: the block loops poll the context between blocks (stepN), so
// a cancellation arriving mid-statement must surface as the context's error —
// never a partial Result — on multi-block inputs for each kernel family.
func TestBatchCancellationMidBlock(t *testing.T) {
	db := fuzzBlockDB() // 2*BlockSize+517 rows per table
	for _, sql := range []string{
		"SELECT S.Sname, COUNT(S.Sid) AS n FROM Student S GROUP BY S.Sname",
		"SELECT COUNT(E.Code) AS n FROM Student S, Enrol E WHERE S.Sid = E.Sid",
		"SELECT D.Sid FROM (SELECT S.Sid, S.Age FROM Student S) D WHERE D.Age = 20",
	} {
		q, err := Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		// Already-cancelled context: the very first poll must abort.
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		res, _, err := ExecOpts(ctx, db, q, ExecConfig{})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: want context.Canceled, got %v (res=%v)", sql, err, res != nil)
		}
		if res != nil {
			t.Errorf("%s: cancelled execution must not return a result", sql)
		}
		// Sanity: the same statement completes when not cancelled, through
		// both kernel generations identically.
		batch, _, err := ExecOpts(context.Background(), db, q, ExecConfig{})
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		encoded, _, err := ExecOpts(context.Background(), db, q, ExecConfig{NoBatch: true})
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		if batch.String() != encoded.String() {
			t.Errorf("%s: batch and encoded disagree uncancelled", sql)
		}
	}
}
