package sqldb

import (
	"context"
	"testing"

	"kwagg/internal/dataset/tpch"
	"kwagg/internal/relation"
	"kwagg/internal/sqlast"
)

// benchDB returns the TPCH benchmark database frozen, as Open leaves it in
// production: frozen tables carry the dictionary encoding, so Exec runs the
// integer-keyed kernels while ExecNoIndex is the formatted-string reference.
func benchDB(b *testing.B) *relation.Database {
	b.Helper()
	db := tpch.New(tpch.Default())
	db.Freeze()
	return db
}

// BenchmarkParse measures parsing the Example 7 nested statement.
func BenchmarkParse(b *testing.B) {
	sql := "SELECT AVG(R.numLid) AS avgnumLid FROM (SELECT C.Code, COUNT(L.Lid) AS numLid " +
		"FROM Lecturer L, Course C, (SELECT DISTINCT Lid, Code FROM Teach) T " +
		"WHERE T.Lid=L.Lid AND T.Code=C.Code GROUP BY C.Code) R"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(sql); err != nil {
			b.Fatal(err)
		}
	}
}

// benchEncodedVsReference runs the statement through the dictionary-encoded
// executor and through the scan-only formatted-string reference path.
func benchEncodedVsReference(b *testing.B, db *relation.Database, sql string) {
	b.Helper()
	q, err := Parse(sql)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("encoded", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Exec(db, q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ExecNoIndex(db, q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkHashJoin3Way measures the T5-style join over the TPCH data.
func BenchmarkHashJoin3Way(b *testing.B) {
	benchEncodedVsReference(b, benchDB(b),
		"SELECT COUNT(S.suppkey) AS n FROM Supplier S, Part P, "+
			"(SELECT DISTINCT suppkey, partkey FROM Lineitem) L "+
			"WHERE P.partkey=L.partkey AND L.suppkey=S.suppkey AND P.pname CONTAINS 'royal olive'")
}

// BenchmarkGroupByAggregate measures grouping all lineitems by supplier.
func BenchmarkGroupByAggregate(b *testing.B) {
	benchEncodedVsReference(b, benchDB(b),
		"SELECT L.suppkey, COUNT(L.partkey) AS n FROM Lineitem L GROUP BY L.suppkey")
}

// BenchmarkDistinctProjection measures the Section 3.1.3 projection cost.
func BenchmarkDistinctProjection(b *testing.B) {
	benchEncodedVsReference(b, benchDB(b),
		"SELECT DISTINCT L.partkey, L.suppkey FROM Lineitem L")
}

// BenchmarkEqualityFilter measures an equality-constant filter over the
// Lineitem table through the value index against the scan-only reference
// path (ExecNoIndex).
func BenchmarkEqualityFilter(b *testing.B) {
	db := benchDB(b)
	q, err := Parse("SELECT L.partkey FROM Lineitem L WHERE L.suppkey = 7")
	if err != nil {
		b.Fatal(err)
	}
	if res, err := Exec(db, q); err != nil || len(res.Rows) == 0 {
		b.Fatalf("filter selects nothing: %v, %v", res, err)
	}
	b.Run("index", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Exec(db, q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ExecNoIndex(db, q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMemoSharedSubplans executes a batch of statements that share join
// fragments — the shape of a top-k interpretation list — with and without the
// shared-subplan memo.
func BenchmarkMemoSharedSubplans(b *testing.B) {
	db := benchDB(b)
	sqls := []string{
		"SELECT S.sname, COUNT(L.partkey) AS n FROM Supplier S, Lineitem L WHERE S.suppkey=L.suppkey GROUP BY S.sname",
		"SELECT S.sname, SUM(L.quantity) AS n FROM Supplier S, Lineitem L WHERE S.suppkey=L.suppkey GROUP BY S.sname",
		"SELECT S.sname, AVG(L.quantity) AS n FROM Supplier S, Lineitem L WHERE S.suppkey=L.suppkey GROUP BY S.sname",
		"SELECT S.sname, MAX(L.quantity) AS n FROM Supplier S, Lineitem L WHERE S.suppkey=L.suppkey GROUP BY S.sname",
	}
	queries := make([]*sqlast.Query, 0, len(sqls))
	for _, s := range sqls {
		q, err := Parse(s)
		if err != nil {
			b.Fatal(err)
		}
		queries = append(queries, q)
	}
	b.Run("memo", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := NewMemo(1 << 22)
			for _, q := range queries {
				if _, _, err := ExecMemoContext(context.Background(), db, q, m); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("nomemo", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				if _, err := Exec(db, q); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
