package sqldb

import (
	"testing"

	"kwagg/internal/dataset/tpch"
	"kwagg/internal/relation"
)

func benchDB(b *testing.B) *relation.Database {
	b.Helper()
	return tpch.New(tpch.Default())
}

// BenchmarkParse measures parsing the Example 7 nested statement.
func BenchmarkParse(b *testing.B) {
	sql := "SELECT AVG(R.numLid) AS avgnumLid FROM (SELECT C.Code, COUNT(L.Lid) AS numLid " +
		"FROM Lecturer L, Course C, (SELECT DISTINCT Lid, Code FROM Teach) T " +
		"WHERE T.Lid=L.Lid AND T.Code=C.Code GROUP BY C.Code) R"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(sql); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHashJoin3Way measures the T5-style join over the TPCH data.
func BenchmarkHashJoin3Way(b *testing.B) {
	db := benchDB(b)
	sql := "SELECT COUNT(S.suppkey) AS n FROM Supplier S, Part P, " +
		"(SELECT DISTINCT suppkey, partkey FROM Lineitem) L " +
		"WHERE P.partkey=L.partkey AND L.suppkey=S.suppkey AND P.pname CONTAINS 'royal olive'"
	q, err := Parse(sql)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Exec(db, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGroupByAggregate measures grouping all lineitems by supplier.
func BenchmarkGroupByAggregate(b *testing.B) {
	db := benchDB(b)
	q, err := Parse("SELECT L.suppkey, COUNT(L.partkey) AS n FROM Lineitem L GROUP BY L.suppkey")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Exec(db, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDistinctProjection measures the Section 3.1.3 projection cost.
func BenchmarkDistinctProjection(b *testing.B) {
	db := benchDB(b)
	q, err := Parse("SELECT DISTINCT L.partkey, L.suppkey FROM Lineitem L")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Exec(db, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEqualityFilter measures an equality-constant filter over the
// Lineitem table through the value index against the scan-only reference
// path (ExecNoIndex).
func BenchmarkEqualityFilter(b *testing.B) {
	db := benchDB(b)
	db.Freeze()
	q, err := Parse("SELECT L.partkey FROM Lineitem L WHERE L.suppkey = 7")
	if err != nil {
		b.Fatal(err)
	}
	if res, err := Exec(db, q); err != nil || len(res.Rows) == 0 {
		b.Fatalf("filter selects nothing: %v, %v", res, err)
	}
	b.Run("index", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Exec(db, q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ExecNoIndex(db, q); err != nil {
				b.Fatal(err)
			}
		}
	})
}
