package sqldb

import (
	"context"
	"runtime"
	"sync"
	"testing"

	"kwagg/internal/dataset/tpch"
	"kwagg/internal/relation"
	"kwagg/internal/sqlast"
)

// benchDB returns the TPCH benchmark database frozen, as Open leaves it in
// production: frozen tables carry the dictionary encoding, so Exec runs the
// integer-keyed kernels while ExecNoIndex is the formatted-string reference.
func benchDB(b *testing.B) *relation.Database {
	b.Helper()
	db := tpch.New(tpch.Default())
	db.Freeze()
	return db
}

// BenchmarkParse measures parsing the Example 7 nested statement.
func BenchmarkParse(b *testing.B) {
	sql := "SELECT AVG(R.numLid) AS avgnumLid FROM (SELECT C.Code, COUNT(L.Lid) AS numLid " +
		"FROM Lecturer L, Course C, (SELECT DISTINCT Lid, Code FROM Teach) T " +
		"WHERE T.Lid=L.Lid AND T.Code=C.Code GROUP BY C.Code) R"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(sql); err != nil {
			b.Fatal(err)
		}
	}
}

// benchThreeWay runs the statement through all three executor generations:
// the vectorized batch kernels (default), the integer-at-a-time encoded
// kernels, and the scan-only formatted-string reference path.
func benchThreeWay(b *testing.B, db *relation.Database, sql string) {
	b.Helper()
	q, err := Parse(sql)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Exec(db, q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("encoded", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ExecEncoded(db, q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ExecNoIndex(db, q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkHashJoin3Way measures the T5-style join over the TPCH data.
func BenchmarkHashJoin3Way(b *testing.B) {
	benchThreeWay(b, benchDB(b),
		"SELECT COUNT(S.suppkey) AS n FROM Supplier S, Part P, "+
			"(SELECT DISTINCT suppkey, partkey FROM Lineitem) L "+
			"WHERE P.partkey=L.partkey AND L.suppkey=S.suppkey AND P.pname CONTAINS 'royal olive'")
}

// BenchmarkGroupByAggregate measures grouping all lineitems by supplier.
func BenchmarkGroupByAggregate(b *testing.B) {
	benchThreeWay(b, benchDB(b),
		"SELECT L.suppkey, COUNT(L.partkey) AS n FROM Lineitem L GROUP BY L.suppkey")
}

// BenchmarkDistinctProjection measures the Section 3.1.3 projection cost.
func BenchmarkDistinctProjection(b *testing.B) {
	benchThreeWay(b, benchDB(b),
		"SELECT DISTINCT L.partkey, L.suppkey FROM Lineitem L")
}

// BenchmarkEqualityFilter measures an equality-constant filter over the
// Lineitem table through the value index against the scan-only reference
// path (ExecNoIndex).
func BenchmarkEqualityFilter(b *testing.B) {
	db := benchDB(b)
	q, err := Parse("SELECT L.partkey FROM Lineitem L WHERE L.suppkey = 7")
	if err != nil {
		b.Fatal(err)
	}
	if res, err := Exec(db, q); err != nil || len(res.Rows) == 0 {
		b.Fatalf("filter selects nothing: %v, %v", res, err)
	}
	b.Run("index", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Exec(db, q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ExecNoIndex(db, q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMemoSharedSubplans executes a batch of statements that share join
// fragments — the shape of a top-k interpretation list — with and without the
// shared-subplan memo.
func BenchmarkMemoSharedSubplans(b *testing.B) {
	db := benchDB(b)
	sqls := []string{
		"SELECT S.sname, COUNT(L.partkey) AS n FROM Supplier S, Lineitem L WHERE S.suppkey=L.suppkey GROUP BY S.sname",
		"SELECT S.sname, SUM(L.quantity) AS n FROM Supplier S, Lineitem L WHERE S.suppkey=L.suppkey GROUP BY S.sname",
		"SELECT S.sname, AVG(L.quantity) AS n FROM Supplier S, Lineitem L WHERE S.suppkey=L.suppkey GROUP BY S.sname",
		"SELECT S.sname, MAX(L.quantity) AS n FROM Supplier S, Lineitem L WHERE S.suppkey=L.suppkey GROUP BY S.sname",
	}
	queries := make([]*sqlast.Query, 0, len(sqls))
	for _, s := range sqls {
		q, err := Parse(s)
		if err != nil {
			b.Fatal(err)
		}
		queries = append(queries, q)
	}
	b.Run("memo", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := NewMemo(1 << 22)
			for _, q := range queries {
				if _, _, err := ExecMemoContext(context.Background(), db, q, m); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("nomemo", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				if _, err := Exec(db, q); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// --- Per-kernel benchmarks ---------------------------------------------------
//
// The BenchmarkKernel* family isolates one kernel each by driving the
// executor's operators directly on prepared rowsets (the statement planner
// would otherwise bury the kernel under scans, planning and output
// materialization — and always probes hash joins with the smaller side, so a
// big-probe shape is unreachable through SQL). Relations span many BlockSize
// blocks plus a partial tail so the block loop's boundary handling is always
// on the path. Throughput is reported as input rows per second so
// BENCH_PR6.json can compare kernels directly across execution modes.

// kernelBenchRows sizes the synthetic kernel relations: 256 blocks plus a
// partial tail.
const kernelBenchRows = 256*relation.BlockSize + 517

// kernelDB builds the synthetic kernel-benchmark database: T carries a
// grouping key (64 values), a join key (16384 values) and a float filter
// column (512 values); U is a small build side covering 64 of T's join keys
// with one row each, so almost every probe misses; W covers every join key
// once, so every probe hits exactly once and emission dominates. The frozen
// database is immutable, so one instance is shared across all callers.
var kernelDBOnce = struct {
	sync.Once
	db *relation.Database
}{}

func kernelDB() *relation.Database {
	kernelDBOnce.Do(func() { kernelDBOnce.db = buildKernelDB() })
	return kernelDBOnce.db
}

func buildKernelDB() *relation.Database {
	db := relation.NewDatabase("kernelbench")
	tt := db.AddSchema(relation.NewSchema("T", "G INT", "V INT", "K INT", "F FLOAT").Key("V"))
	for i := 0; i < kernelBenchRows; i++ {
		tt.MustInsert(int64(i%64), int64(i), int64(i%16384), float64(i%1024)/2)
	}
	uu := db.AddSchema(relation.NewSchema("U", "K INT", "M INT").Key("K"))
	for i := 0; i < 64; i++ {
		uu.MustInsert(int64(i), int64(i*100))
	}
	ww := db.AddSchema(relation.NewSchema("W", "K INT", "M INT").Key("K"))
	for i := 0; i < 16384; i++ {
		ww.MustInsert(int64(i), int64(i*100))
	}
	db.Freeze()
	return db
}

// kernelSource builds the pristine scan rowset of a table under the three
// execution modes (the reference mode drops the encoding, exactly like
// ExecNoIndex's scans).
func kernelSource(b *testing.B, e *executor, name string) *rowset {
	b.Helper()
	rs, err := e.source(sqlast.TableRef{Name: name, Alias: name})
	if err != nil {
		b.Fatal(err)
	}
	return rs
}

// benchKernelModes runs op through the executor generations (sharded, batch,
// encoded, reference), reporting input rows per second per mode. op receives
// a fresh mode-configured executor per call. The sharded mode is the batch
// kernels driven shard-parallel at GOMAXPROCS workers — run with -cpu 1,4 the
// pair of sharded lines shows the multi-core scaling directly, and at -cpu 1
// sharded collapses to batch (parFor caps workers at GOMAXPROCS).
func benchKernelModes(b *testing.B, inputRows int, op func(e *executor) error) {
	b.Helper()
	modes := []struct {
		name    string
		noIndex bool
		noBatch bool
		par     int
	}{
		{"sharded", false, false, runtime.GOMAXPROCS(0)},
		{"batch", false, false, 0},
		{"encoded", false, true, 0},
		{"reference", true, false, 0},
	}
	// One untimed warm-up op so the first timed mode does not pay the heap
	// ramp-up for large outputs that later modes then inherit for free.
	if err := op(&executor{}); err != nil {
		b.Fatal(err)
	}
	for _, m := range modes {
		m := m
		b.Run(m.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := op(&executor{noIndex: m.noIndex, noBatch: m.noBatch, par: m.par}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(inputRows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// BenchmarkKernelFilter isolates the equality-filter kernel on a pristine
// base scan with a float constant — the shape the value index cannot answer
// (it only keys strings and ints), so the batch path runs the contiguous
// eqBits kernel over the column blocks, the encoded path compares dictionary
// IDs row at a time and the reference path Compares boxed values. 1/512 of
// the rows survive, keeping output cost marginal.
func BenchmarkKernelFilter(b *testing.B) {
	db := kernelDB()
	pred := sqlast.ComparePred{
		Col: sqlast.Col{Table: "T", Column: "F"}, Op: sqlast.OpEq, Value: float64(3.5)}
	benchKernelModes(b, kernelBenchRows, func(e *executor) error {
		e.db = db
		src := kernelSource(b, e, "T")
		out, err := e.filterRows(src, pred)
		// 256 full cycles of F plus the tail's one F=3.5 row.
		if err == nil && len(out.rows) != kernelBenchRows/1024+1 {
			b.Fatalf("filter kept %d rows", len(out.rows))
		}
		return err
	})
}

// BenchmarkKernelJoinProbe isolates the hash-join probe with the probe side
// 4096x the build side: T's 16384 join keys probe U's 64-key build (dense
// heads, chains of length one), so 255/256 of the probes miss and the probe
// loop — fused remap+survivor mask, head lookup — dominates emission.
func BenchmarkKernelJoinProbe(b *testing.B) {
	db := kernelDB()
	eqs := []sqlast.JoinPred{{
		Left:  sqlast.Col{Table: "T", Column: "K"},
		Right: sqlast.Col{Table: "U", Column: "K"},
	}}
	benchKernelModes(b, kernelBenchRows, func(e *executor) error {
		e.db = db
		left := kernelSource(b, e, "T")
		right := kernelSource(b, e, "U")
		out, err := e.join(left, right, eqs)
		// 16 full key cycles emit 64 matches each; the 517-row tail covers
		// keys 0..63 once more.
		if err == nil && len(out.rows) != (kernelBenchRows/16384)*64+64 {
			b.Fatalf("join emitted %d rows", len(out.rows))
		}
		return err
	})
}

// BenchmarkKernelJoinEmit isolates the join *emission* path: W covers every
// one of T's 16384 join keys exactly once, so every probe hits and the
// benchmark is dominated by carving output tuples out of arena blocks
// (~hundreds of ns per match when emission allocates per row; the arena
// amortizes that to one allocation per tupleArenaValues values, and the
// sharded path materializes at prefix-summed offsets with no append growth).
// Throughput is reported as emitted matches per second.
func BenchmarkKernelJoinEmit(b *testing.B) {
	db := kernelDB()
	eqs := []sqlast.JoinPred{{
		Left:  sqlast.Col{Table: "T", Column: "K"},
		Right: sqlast.Col{Table: "W", Column: "K"},
	}}
	benchKernelModes(b, kernelBenchRows, func(e *executor) error {
		e.db = db
		left := kernelSource(b, e, "T")
		right := kernelSource(b, e, "W")
		out, err := e.join(left, right, eqs)
		if err == nil && len(out.rows) != kernelBenchRows {
			b.Fatalf("emit join produced %d rows", len(out.rows))
		}
		return err
	})
}

// TestJoinEmitAllocs pins the emit path's allocation amortization: the
// every-probe-hits join from BenchmarkKernelJoinEmit must stay far below one
// allocation per emitted match on both the sequential batch path (arena
// carving) and the shard-parallel path (prefix-sum preallocation). A
// regression to per-row tuple boxing trips the 0.02 allocs/match budget by
// 50x.
func TestJoinEmitAllocs(t *testing.T) {
	db := kernelDB()
	eqs := []sqlast.JoinPred{{
		Left:  sqlast.Col{Table: "T", Column: "K"},
		Right: sqlast.Col{Table: "W", Column: "K"},
	}}
	for _, mode := range []struct {
		name string
		par  int
	}{
		{"batch", 0},
		{"sharded", runtime.GOMAXPROCS(0)},
	} {
		e := &executor{db: db, par: mode.par}
		left, err := e.source(sqlast.TableRef{Name: "T", Alias: "T"})
		if err != nil {
			t.Fatal(err)
		}
		right, err := e.source(sqlast.TableRef{Name: "W", Alias: "W"})
		if err != nil {
			t.Fatal(err)
		}
		// testing.AllocsPerRun pins GOMAXPROCS to 1 for its measurement,
		// which would collapse the sharded leg onto the sequential path —
		// count cumulative mallocs by hand instead. Mallocs is a
		// whole-process counter, so the budget leaves room for runtime
		// noise (it sits ~25x above the measured cost).
		const runs = 3
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		for i := 0; i < runs; i++ {
			out, err := e.join(left, right, eqs)
			if err != nil {
				t.Fatal(err)
			}
			if len(out.rows) != kernelBenchRows {
				t.Fatalf("emit join produced %d rows", len(out.rows))
			}
		}
		runtime.ReadMemStats(&after)
		allocs := float64(after.Mallocs-before.Mallocs) / runs
		if per := allocs / float64(kernelBenchRows); per > 0.02 {
			t.Errorf("%s: join emitted %d matches in %.0f allocs (%.4f allocs/match, budget 0.02)",
				mode.name, kernelBenchRows, allocs, per)
		}
	}
}

// BenchmarkKernelGroupBy isolates the grouping kernel through the whole
// statement (grouping is not reachable as a lone operator): one encoded key
// with 64 distinct values (dense slot table) and a COUNT that the batch path
// answers from the slot sizes without touching boxed values.
func BenchmarkKernelGroupBy(b *testing.B) {
	db := kernelDB()
	q, err := Parse("SELECT T.G, COUNT(T.V) AS n FROM T GROUP BY T.G")
	if err != nil {
		b.Fatal(err)
	}
	benchKernelModes(b, kernelBenchRows, func(e *executor) error {
		e.db = db
		_, err := e.query(q)
		return err
	})
}
