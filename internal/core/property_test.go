package core

import (
	"math/rand"
	"strings"
	"testing"

	"kwagg/internal/dataset/university"
	"kwagg/internal/sqldb"
)

// TestPropertyGeneratedSQLExecutes drives the full pipeline with hundreds of
// randomly composed keyword queries over the university vocabulary and
// asserts the invariant the translator must uphold: every interpretation of
// every accepted query renders to SQL that parses and executes.
func TestPropertyGeneratedSQLExecutes(t *testing.T) {
	s := mustOpen(t, university.New())
	vocabulary := struct {
		relations  []string
		attributes []string
		values     []string
		aggs       []string
	}{
		relations:  []string{"Student", "Course", "Enrol", "Lecturer", "Department", "Faculty", "Textbook", "Teach"},
		attributes: []string{"Sname", "Age", "Credit", "Title", "Price", "Grade", "Lname", "Dname", "Fname", "Code"},
		values:     []string{"Green", "George", "Java", "Database", "Steven", "Engineering", "CS", `"Programming Language"`},
		aggs:       []string{"COUNT", "SUM", "AVG", "MIN", "MAX"},
	}

	r := rand.New(rand.NewSource(2016))
	pick := func(xs []string) string { return xs[r.Intn(len(xs))] }

	buildQuery := func() string {
		var terms []string
		n := 1 + r.Intn(3)
		for i := 0; i < n; i++ {
			switch r.Intn(4) {
			case 0:
				terms = append(terms, pick(vocabulary.relations))
			case 1:
				terms = append(terms, pick(vocabulary.attributes))
			default:
				terms = append(terms, pick(vocabulary.values))
			}
		}
		// Optionally prepend an aggregate (with its operand) and append a
		// GROUPBY clause, respecting Definition 1's ordering constraints.
		if r.Intn(2) == 0 {
			agg := pick(vocabulary.aggs)
			operand := pick(vocabulary.attributes)
			if agg == "COUNT" && r.Intn(2) == 0 {
				operand = pick(vocabulary.relations)
			}
			terms = append([]string{agg, operand}, terms...)
		}
		if r.Intn(3) == 0 {
			terms = append(terms, "GROUPBY", pick(vocabulary.relations))
		}
		return strings.Join(terms, " ")
	}

	accepted, executed := 0, 0
	for i := 0; i < 400; i++ {
		q := buildQuery()
		ins, err := s.Interpret(q, 8)
		if err != nil {
			continue // ambiguity may be unresolvable; that is fine
		}
		accepted++
		for _, in := range ins {
			text := in.SQL.String()
			parsed, err := sqldb.Parse(text)
			if err != nil {
				t.Fatalf("query %q: generated SQL does not parse: %v\n%s", q, err, text)
			}
			if parsed.String() != text {
				t.Fatalf("query %q: render/parse not a fixpoint:\n%s\n%s", q, text, parsed.String())
			}
			if _, err := sqldb.Exec(s.Data, in.SQL); err != nil {
				t.Fatalf("query %q: generated SQL does not execute: %v\n%s", q, err, text)
			}
			executed++
		}
	}
	if accepted < 100 {
		t.Fatalf("vocabulary should produce many valid queries; accepted only %d", accepted)
	}
	t.Logf("accepted %d random queries, executed %d interpretations", accepted, executed)
}

// TestPropertyUnnormalizedPipeline repeats the invariant over the Figure 8
// database, additionally exercising the view mapping and rewrite rules.
func TestPropertyUnnormalizedPipeline(t *testing.T) {
	s, err := Open(university.NewEnrolment(), &Options{NameHints: university.EnrolmentHints()})
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"Green COUNT Code",
		"George AVG Credit",
		"COUNT Student GROUPBY Course",
		"COUNT Course GROUPBY Student",
		"MAX Age",
		"MIN Credit GROUPBY Student",
		"AVG COUNT Course GROUPBY Student",
		"Student Green",
		"Java Green",
		"SUM Credit Green George",
	}
	for _, q := range queries {
		ins, err := s.Interpret(q, 0)
		if err != nil {
			t.Fatalf("Interpret(%q): %v", q, err)
		}
		for _, in := range ins {
			if _, err := sqldb.Exec(s.Data, in.SQL); err != nil {
				t.Fatalf("query %q: %v\n%s", q, err, in.SQL)
			}
		}
	}
}
