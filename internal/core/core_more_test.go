package core

import (
	"strings"
	"testing"

	"kwagg/internal/dataset/university"
	"kwagg/internal/relation"
)

func TestOpenRejectsInvalidSchema(t *testing.T) {
	db := relation.NewDatabase("bad")
	db.AddSchema(relation.NewSchema("T", "a").Key("missing"))
	if _, err := Open(db, nil); err == nil {
		t.Error("invalid schema should be rejected at Open")
	}
}

func TestInterpretKLimit(t *testing.T) {
	s := mustOpen(t, university.New())
	all, err := s.Interpret("Green SUM Credit", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 2 {
		t.Fatalf("expected several interpretations, got %d", len(all))
	}
	one, err := s.Interpret("Green SUM Credit", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || one[0].SQL.String() != all[0].SQL.String() {
		t.Error("k=1 should return the top-ranked interpretation")
	}
}

func TestInterpretParseError(t *testing.T) {
	s := mustOpen(t, university.New())
	if _, err := s.Interpret("Student COUNT", 0); err == nil {
		t.Error("trailing operator should fail")
	}
	if _, err := s.Interpret("", 0); err == nil {
		t.Error("empty query should fail")
	}
}

func TestBestAnswerSelector(t *testing.T) {
	s := mustOpen(t, university.New())
	// Select the merged (non-grouped) variant explicitly.
	a, err := s.BestAnswer("Green SUM Credit", 0, func(in Interpretation) bool {
		return !strings.Contains(in.SQL.String(), "GROUP BY")
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Result.Rows) != 1 {
		t.Fatalf("merged variant should have one row: %v", a.Result.Rows)
	}
	f, _ := relation.AsFloat(a.Result.Rows[0][len(a.Result.Rows[0])-1])
	if f != 13 {
		t.Errorf("merged total should be 13, got %v", f)
	}
	// A selector nothing satisfies errors out.
	if _, err := s.BestAnswer("Green SUM Credit", 0, func(Interpretation) bool { return false }); err == nil {
		t.Error("unsatisfiable selector should fail")
	}
	// Nil selector returns the top-ranked interpretation.
	top, err := s.BestAnswer("Green SUM Credit", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(top.Result.Rows) != 2 {
		t.Errorf("top-ranked (disambiguated) variant expected: %v", top.Result.Rows)
	}
}

func TestPureKeywordQuery(t *testing.T) {
	s := mustOpen(t, university.New())
	// {Green George Code}: common courses of Green and George students.
	as, err := s.Answer("Green George Code", 1)
	if err != nil {
		t.Fatal(err)
	}
	rows := as[0].Result.Rows
	if len(rows) == 0 {
		t.Fatalf("expected common courses, got none\nSQL: %s", as[0].SQL)
	}
	// s2 shares c1; s3 shares c1 and c3 with George.
	codes := map[string]bool{}
	for _, row := range rows {
		for _, v := range row {
			codes[relation.Format(v)] = true
		}
	}
	if !codes["c1"] {
		t.Errorf("c1 must be a common course: %v", rows)
	}
}

func TestGroupByAttributeTerm(t *testing.T) {
	s := mustOpen(t, university.New())
	// Group by an attribute name (Grade) rather than a relation.
	as, err := s.Answer("COUNT Student GROUPBY Grade", 1)
	if err != nil {
		t.Fatal(err)
	}
	rows := as[0].Result.Rows
	if len(rows) != 2 { // grades A and B
		t.Fatalf("two grade groups expected: %v\nSQL: %s", rows, as[0].SQL)
	}
}

func TestMinMaxAggregates(t *testing.T) {
	s := mustOpen(t, university.New())
	as, err := s.Answer("MIN Price GROUPBY Course", 1)
	if err != nil {
		t.Fatal(err)
	}
	// Cheapest textbook per course: c1 -> 10, c2 -> 12, c3 -> 20.
	want := map[string]float64{"c1": 10, "c2": 12, "c3": 20}
	if len(as[0].Result.Rows) != 3 {
		t.Fatalf("rows: %v\nSQL: %s", as[0].Result.Rows, as[0].SQL)
	}
	for _, row := range as[0].Result.Rows {
		code := relation.Format(row[0])
		f, _ := relation.AsFloat(row[len(row)-1])
		if want[code] != f {
			t.Errorf("course %s min price = %v, want %v", code, f, want[code])
		}
	}
}

func TestDeepNestedAggregates(t *testing.T) {
	s := mustOpen(t, university.New())
	// MAX of the per-course student counts: course c1 has 3 students.
	as, err := s.Answer("MAX COUNT Student GROUPBY Course", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(as[0].Result.Rows) != 1 {
		t.Fatalf("rows: %v", as[0].Result.Rows)
	}
	if n := as[0].Result.Rows[0][0].(int64); n != 3 {
		t.Errorf("max class size should be 3, got %d\nSQL: %s", n, as[0].SQL)
	}
}

func TestAnswerExecutesAllK(t *testing.T) {
	s := mustOpen(t, university.New())
	as, err := s.Answer("George Code", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) < 2 {
		t.Fatalf("George is ambiguous (student/lecturer); want several answers, got %d", len(as))
	}
	for _, a := range as {
		if a.Result == nil {
			t.Error("every interpretation must be executed")
		}
	}
}

func TestDescribeSchemaListsAllNodes(t *testing.T) {
	s := mustOpen(t, university.New())
	d := s.DescribeSchema()
	for _, name := range []string{"Student", "Course", "Enrol", "Teach", "Lecturer", "Department", "Faculty", "Textbook"} {
		if !strings.Contains(d, name) {
			t.Errorf("DescribeSchema missing %s:\n%s", name, d)
		}
	}
}

func TestAnswerParallelMatchesSequential(t *testing.T) {
	s := mustOpen(t, university.New())
	seq, err := s.Answer("Green SUM Credit", 0)
	if err != nil {
		t.Fatal(err)
	}
	par, err := s.AnswerParallel("Green SUM Credit", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("answer counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].SQL.String() != par[i].SQL.String() {
			t.Errorf("answer %d: interpretation order changed", i)
		}
		if len(seq[i].Result.Rows) != len(par[i].Result.Rows) {
			t.Errorf("answer %d: row counts differ", i)
		}
		for r := range seq[i].Result.Rows {
			for c := range seq[i].Result.Rows[r] {
				if !relation.Equal(seq[i].Result.Rows[r][c], par[i].Result.Rows[r][c]) {
					t.Errorf("answer %d row %d differs", i, r)
				}
			}
		}
	}
}

// TestMultipleGroupByTerms: two GROUPBY operators group by two classes at
// once (orders per customer per priority would be the TPCH analog).
func TestMultipleGroupByTerms(t *testing.T) {
	s := mustOpen(t, university.New())
	as, err := s.Answer("COUNT Textbook GROUPBY Course GROUPBY Lecturer", 1)
	if err != nil {
		t.Fatal(err)
	}
	sql := as[0].SQL.String()
	if !strings.Contains(sql, "GROUP BY") || strings.Count(sql, "GROUP BY") != 1 {
		t.Fatalf("one GROUP BY clause with two columns expected:\n%s", sql)
	}
	if len(as[0].SQL.GroupBy) != 2 {
		t.Fatalf("two grouping columns expected: %v", as[0].SQL.GroupBy)
	}
	// Teach has 4 distinct (course, lecturer) pairs.
	if len(as[0].Result.Rows) != 4 {
		t.Errorf("4 course-lecturer groups expected: %v", as[0].Result.Rows)
	}
}

// TestFigure2MoreQueries exercises the Figure 2 denormalized database
// beyond Q3: grouping lecturers by faculty traverses the duplicated
// Did/Fid associations without double counting.
func TestFigure2MoreQueries(t *testing.T) {
	s, err := Open(university.NewDenormalizedLecturer(),
		&Options{NameHints: university.DenormalizedLecturerHints()})
	if err != nil {
		t.Fatal(err)
	}
	as, err := s.Answer("COUNT Lecturer GROUPBY Faculty", 1)
	if err != nil {
		t.Fatal(err)
	}
	rows := as[0].Result.Rows
	if len(rows) != 1 {
		t.Fatalf("one faculty expected: %v\nSQL: %s", rows, as[0].SQL)
	}
	if n := rows[0][len(rows[0])-1].(int64); n != 2 {
		t.Errorf("two lecturers in Engineering, got %d\nSQL: %s", n, as[0].SQL)
	}
}
