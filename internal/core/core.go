// Package core wires the whole semantic pipeline of the paper together
// (Algorithm 2, Keyword Search): term matching, query-pattern generation and
// annotation, disambiguation, ranking, SQL translation, and — when the
// database is unnormalized — planning over the normalized view D' with
// mapping back to D and the Section 4.1 rewriting rules.
package core

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"

	"kwagg/internal/keyword"
	"kwagg/internal/match"
	"kwagg/internal/normalize"
	"kwagg/internal/obs"
	"kwagg/internal/orm"
	"kwagg/internal/pattern"
	"kwagg/internal/relation"
	"kwagg/internal/sqlast"
	"kwagg/internal/sqldb"
	"kwagg/internal/translate"
)

// System answers keyword queries over one database.
//
// A System is safe for concurrent use after Open: the schema graph, matcher,
// inverted index and per-table value indexes are all built during Open and
// never mutated afterwards (Open freezes the database, so inserts are
// rejected from then on). The exported fields are shared state — treat them
// as read-only.
type System struct {
	Data       *relation.Database
	Graph      *orm.Graph
	View       *normalize.View // nil when the database is normalized
	Matcher    *match.Matcher
	Generator  *pattern.Generator
	Translator *translate.Translator

	// Workers bounds the worker pool executing the top-k statements in
	// Answer; 0 means min(GOMAXPROCS, 8). Set before sharing the System.
	Workers int
}

// Options configures Open.
type Options struct {
	// NameHints names the synthesized relations of the normalized view (see
	// normalize.BuildView); unused for normalized databases.
	NameHints map[string]string
	// ForceViewPipeline runs the normalized-view pipeline even when the
	// database is already in 3NF (used in tests).
	ForceViewPipeline bool
	// Workers bounds the Answer execution pool; 0 means min(GOMAXPROCS, 8).
	Workers int
}

// Open prepares a database for keyword search. It checks every relation's
// normal form (Algorithm 1/2): if all relations are in 3NF the ORM schema
// graph is built directly on the schema; otherwise the normalized view D' is
// derived, the graph is built on D', and translation maps back to the stored
// relations and rewrites the SQL.
func Open(db *relation.Database, opts *Options) (*System, error) {
	if opts == nil {
		opts = &Options{}
	}
	if errs := relation.ValidateDatabase(db); len(errs) > 0 {
		return nil, fmt.Errorf("core: invalid schema: %w (and %d more)", errs[0], len(errs)-1)
	}
	s := &System{Data: db}
	view, err := normalize.BuildView(db, opts.NameHints)
	if err != nil {
		return nil, err
	}
	if view.Changed || opts.ForceViewPipeline {
		s.View = view
		g, err := orm.Build(view.Schemas)
		if err != nil {
			return nil, fmt.Errorf("core: building ORM graph over normalized view: %w", err)
		}
		s.Graph = g
		s.Matcher = match.New(db, view.Schemas, g, view.Sources)
		s.Translator = &translate.Translator{Graph: g, Data: db, Sources: view.Sources, Rewrite: true}
	} else {
		g, err := orm.Build(db.Schemas())
		if err != nil {
			return nil, fmt.Errorf("core: building ORM graph: %w", err)
		}
		s.Graph = g
		s.Matcher = match.New(db, db.Schemas(), g, nil)
		s.Translator = translate.New(g, db)
	}
	s.Generator = pattern.NewGenerator(s.Matcher)
	s.Workers = opts.Workers
	// Freeze the stored data: later inserts are rejected, and every
	// per-table value index is built now so query execution never mutates
	// shared state (the thread-safety contract of System).
	db.Freeze()
	return s, nil
}

// Unnormalized reports whether the system plans over a normalized view.
func (s *System) Unnormalized() bool { return s.View != nil }

// Interpretation is one ranked reading of a keyword query: its annotated
// query pattern, the generated SQL, and a description of the intent.
type Interpretation struct {
	Pattern     *pattern.Pattern
	SQL         *sqlast.Query
	Description string
}

// Interpret parses the query, generates and ranks the annotated query
// patterns, and translates the top-k of them into SQL. k <= 0 means all.
func (s *System) Interpret(query string, k int) ([]Interpretation, error) {
	return s.InterpretContext(context.Background(), query, k)
}

// InterpretContext is Interpret with the pipeline stages instrumented: when
// the context carries an obs trace or registry, parsing, matching, pattern
// generation, ranking and SQL translation each run under a span, giving the
// per-stage cost breakdown the paper reports in its evaluation (Section 8).
func (s *System) InterpretContext(ctx context.Context, query string, k int) ([]Interpretation, error) {
	_, pspan := obs.Start(ctx, "parse")
	q, err := keyword.Parse(query)
	pspan.End()
	if err != nil {
		return nil, err
	}
	patterns, err := s.Generator.GenerateContext(ctx, q)
	if err != nil {
		return nil, err
	}
	if k > 0 && len(patterns) > k {
		patterns = patterns[:k]
	}
	_, tspan := obs.Start(ctx, "translate")
	defer tspan.End()
	out := make([]Interpretation, 0, len(patterns))
	for _, p := range patterns {
		sql, err := s.Translator.Translate(p)
		if err != nil {
			return nil, fmt.Errorf("core: translating pattern %s: %w", p, err)
		}
		out = append(out, Interpretation{Pattern: p, SQL: sql, Description: p.Describe()})
	}
	return out, nil
}

// Answer is one executed interpretation.
type Answer struct {
	Interpretation
	Result *sqldb.Result
}

// Answer interprets the query and executes the top-k generated SQL
// statements against the stored database. Execution runs on a bounded
// worker pool (see Workers); the returned slice preserves rank order.
func (s *System) Answer(query string, k int) ([]Answer, error) {
	return s.AnswerContext(context.Background(), query, k)
}

// AnswerContext is Answer honoring a context: cancellation is checked before
// each statement starts executing (a statement already running is not
// interrupted).
func (s *System) AnswerContext(ctx context.Context, query string, k int) ([]Answer, error) {
	ins, err := s.InterpretContext(ctx, query, k)
	if err != nil {
		return nil, err
	}
	return s.ExecuteAll(ctx, ins)
}

// AnswerParallel is kept as an alias of Answer for older callers; Answer
// itself now executes on the bounded pool.
func (s *System) AnswerParallel(query string, k int) ([]Answer, error) {
	return s.Answer(query, k)
}

// ExecWorkers resolves the execution pool size Answer uses.
func (s *System) ExecWorkers() int {
	if s.Workers > 0 {
		return s.Workers
	}
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	if n < 1 {
		n = 1
	}
	return n
}

// ExecuteAll executes every interpretation's SQL against the stored database
// on a pool of at most workerCount goroutines, returning the answers in the
// same rank order as ins. The database is frozen (read-only), so the workers
// share it without locking. The first error wins; ctx cancellation stops
// statements that have not started yet.
func (s *System) ExecuteAll(ctx context.Context, ins []Interpretation) ([]Answer, error) {
	if len(ins) == 0 {
		return nil, nil
	}
	// The execute span covers the wall time of the whole pool run; each
	// statement additionally runs under a nested per-statement span, so a
	// trace shows both the stage cost and how the pool overlapped statements.
	ctx, espan := obs.Start(ctx, "execute")
	defer espan.End()
	workers := s.ExecWorkers()
	if workers > len(ins) {
		workers = len(ins)
	}
	out := make([]Answer, len(ins))
	errs := make([]error, len(ins))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				_, sspan := obs.Start(ctx, "sql")
				sspan.Detail(fmt.Sprintf("stmt %d", i))
				res, err := sqldb.Exec(s.Data, ins[i].SQL)
				sspan.End()
				if err != nil {
					errs[i] = fmt.Errorf("core: executing %q: %w", ins[i].SQL, err)
					continue
				}
				res.SortRows()
				out[i] = Answer{Interpretation: ins[i], Result: res}
			}
		}()
	}
	for i := range ins {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// BestAnswer returns the first interpretation whose description satisfies
// pick (or the top-ranked one when pick is nil), executed. The experiment
// harness uses pick to select the interpretation matching the paper's query
// description, mirroring how the authors "use the generated SQL statements
// that best match the query descriptions".
func (s *System) BestAnswer(query string, k int, pick func(Interpretation) bool) (*Answer, error) {
	ins, err := s.Interpret(query, k)
	if err != nil {
		return nil, err
	}
	idx := 0
	if pick != nil {
		found := false
		for i, in := range ins {
			if pick(in) {
				idx, found = i, true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("core: no interpretation of %q matches the selector", query)
		}
	}
	res, err := sqldb.Exec(s.Data, ins[idx].SQL)
	if err != nil {
		return nil, fmt.Errorf("core: executing %q: %w", ins[idx].SQL, err)
	}
	res.SortRows()
	return &Answer{Interpretation: ins[idx], Result: res}, nil
}

// Execute runs an arbitrary SQL statement of the supported subset against
// the stored database.
func (s *System) Execute(sql string) (*sqldb.Result, error) {
	return sqldb.ExecSQL(s.Data, sql)
}

// DescribeSchema summarises the planning schema: node names, types and
// relations — the ORM schema graph contents (Figures 3 and 9).
func (s *System) DescribeSchema() string {
	var b strings.Builder
	for _, n := range s.Graph.Nodes() {
		fmt.Fprintf(&b, "%s [%s] %s", n.Name, n.Type, n.Relation)
		if s.View != nil {
			src := s.View.Sources[strings.ToLower(n.Relation.Name)]
			if !strings.EqualFold(src, n.Relation.Name) {
				fmt.Fprintf(&b, " <- %s", src)
			}
		}
		for _, c := range n.Components {
			fmt.Fprintf(&b, " +component %s", c)
		}
		fmt.Fprintf(&b, " adj=%v\n", s.Graph.Neighbors(n.Name))
	}
	return b.String()
}
