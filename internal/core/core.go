// Package core wires the whole semantic pipeline of the paper together
// (Algorithm 2, Keyword Search): term matching, query-pattern generation and
// annotation, disambiguation, ranking, SQL translation, and — when the
// database is unnormalized — planning over the normalized view D' with
// mapping back to D and the Section 4.1 rewriting rules.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"kwagg/internal/backend"
	"kwagg/internal/chaos"
	"kwagg/internal/keyword"
	"kwagg/internal/match"
	"kwagg/internal/normalize"
	"kwagg/internal/obs"
	"kwagg/internal/orm"
	"kwagg/internal/pattern"
	"kwagg/internal/planck"
	"kwagg/internal/relation"
	"kwagg/internal/sqlast"
	"kwagg/internal/sqldb"
	"kwagg/internal/translate"
)

// System answers keyword queries over one database.
//
// A System is safe for concurrent use after Open: the schema graph, matcher,
// inverted index and per-table value indexes are all built during Open and
// never mutated afterwards (Open freezes the database, so inserts are
// rejected from then on). The exported fields are shared state — treat them
// as read-only.
type System struct {
	Data       *relation.Database
	Graph      *orm.Graph
	View       *normalize.View // nil when the database is normalized
	Matcher    *match.Matcher
	Generator  *pattern.Generator
	Translator *translate.Translator

	// Workers bounds the worker pool executing the top-k statements in
	// Answer; 0 means min(GOMAXPROCS, 8). Set before sharing the System.
	Workers int

	// Chaos is the optional fault injector consulted at the statement and
	// worker injection points (nil disables chaos, the default). Set before
	// sharing the System.
	Chaos chaos.Injector

	// MaxRetries bounds how many times one statement is retried after an
	// injectable-transient fault (real execution errors are never retried);
	// 0 means DefaultMaxRetries, negative disables retrying. Set before
	// sharing the System.
	MaxRetries int

	// RetryBackoff is the base of the exponential jittered backoff between
	// statement retries; 0 means DefaultRetryBackoff. Set before sharing
	// the System.
	RetryBackoff time.Duration

	// Memo is the shared-subplan cache statement execution runs through: the
	// top-k interpretations of one keyword query share most of their
	// ORM-graph join fragments, so filtered scans, join accumulations and
	// derived tables computed by one statement are reused by the others (and
	// by later requests — sound because Open froze the database). nil
	// disables memoization. Built by Open from Options.MemoCells.
	Memo *sqldb.Memo

	// Plan is the plan-invariant verifier over the stored database, built by
	// Open. CheckPlans always consults it; Interpret additionally fails on
	// any finding when VerifyPlans is set.
	Plan *planck.Checker

	// VerifyPlans makes Interpret verify every translated plan with planck
	// and fail on findings — the debug-mode assertion the test suites run
	// under. Set before sharing the System.
	VerifyPlans bool

	// NoBatch pins statement execution to the integer-at-a-time encoded
	// kernels instead of the vectorized batch kernels (output is
	// byte-identical either way). Built by Open from Options.BatchKernels.
	NoBatch bool

	// Shards is the shard-parallel worker target for a single statement's
	// batch kernels: 0 resolves to min(GOMAXPROCS, 8), negative pins
	// single-shard execution. Answers are row- and byte-identical either
	// way (see internal/sqldb/parallel.go). Built by Open from
	// Options.Shards.
	Shards int

	// Backend, when non-nil, executes every statement instead of the
	// embedded in-memory engine: generated SQL is rendered for the backend's
	// dialect and run on its engine, under the same per-statement deadline,
	// chaos injection and transient-retry policy as the default path. The
	// backend must hold (an export of) the same frozen data as Data. Built by
	// Open from Options.Backend.
	Backend backend.Backend
}

// Retry policy defaults: up to two retries, 1ms base backoff doubling per
// attempt with up to 50% jitter — enough to ride out an injected fault burst
// without holding a request hostage.
const (
	DefaultMaxRetries   = 2
	DefaultRetryBackoff = time.Millisecond
)

// DefaultMemoCells is the default shared-subplan memo budget, in result cells
// (rows x columns summed over cached fragments) — roughly a few tens of
// megabytes of cached intermediate rowsets at typical column counts.
const DefaultMemoCells = 1 << 20

// Options configures Open.
type Options struct {
	// NameHints names the synthesized relations of the normalized view (see
	// normalize.BuildView); unused for normalized databases.
	NameHints map[string]string
	// ForceViewPipeline runs the normalized-view pipeline even when the
	// database is already in 3NF (used in tests).
	ForceViewPipeline bool
	// Workers bounds the Answer execution pool; 0 means min(GOMAXPROCS, 8).
	Workers int
	// Chaos is the optional fault injector (nil = disabled).
	Chaos chaos.Injector
	// MaxRetries and RetryBackoff tune the transient-fault retry policy;
	// zero values select the defaults.
	MaxRetries   int
	RetryBackoff time.Duration
	// MemoCells bounds the shared-subplan memo (result cells, LRU); 0 means
	// DefaultMemoCells, negative disables memoization.
	MemoCells int64
	// VerifyPlans makes Interpret verify every translated plan against the
	// paper's invariants (internal/planck) and fail on findings.
	VerifyPlans bool
	// BatchKernels selects the executor's kernel generation: 0 (the
	// default) and positive run the vectorized batch kernels, negative pins
	// the integer-at-a-time encoded path — the escape hatch, byte-identical
	// output, mirroring the MemoCells zero/negative idiom.
	BatchKernels int
	// Shards is the per-statement shard-parallel worker target: 0 means
	// min(GOMAXPROCS, 8), 1 or negative pins single-shard execution —
	// the same zero/negative idiom as MemoCells and BatchKernels.
	Shards int
	// Backend routes statement execution to an external engine (nil — the
	// default — executes on the embedded in-memory engine). The caller keeps
	// ownership: Close it after the System is done.
	Backend backend.Backend
	// FullRefreeze pins Live.Commit to the from-scratch O(total rows) epoch
	// rebuild instead of the incremental O(new rows) delta freeze. The two
	// produce byte-identical epochs (the differential suites gate it); the
	// escape hatch exists for comparison benchmarks and bisection, mirroring
	// the BatchKernels idiom.
	FullRefreeze bool
}

// Open prepares a database for keyword search. It checks every relation's
// normal form (Algorithm 1/2): if all relations are in 3NF the ORM schema
// graph is built directly on the schema; otherwise the normalized view D' is
// derived, the graph is built on D', and translation maps back to the stored
// relations and rewrites the SQL.
func Open(db *relation.Database, opts *Options) (*System, error) {
	return openSystem(db, opts, nil)
}

// openSystem is Open with an optional pre-built inverted index over db (it
// must equal relation.BuildIndex(db); nil builds one). The incremental epoch
// commit passes the patched previous-epoch index so opening the next epoch
// never re-tokenizes old rows; everything else about Open is unchanged — on
// an already-frozen database (a delta-built epoch) the Freeze below is a
// per-table no-op, so the open costs only the schema-sized work (view, ORM
// graph, plan checker, fresh memo).
func openSystem(db *relation.Database, opts *Options, idx *relation.InvertedIndex) (*System, error) {
	if opts == nil {
		opts = &Options{}
	}
	if errs := relation.ValidateDatabase(db); len(errs) > 0 {
		return nil, fmt.Errorf("core: invalid schema: %w (and %d more)", errs[0], len(errs)-1)
	}
	s := &System{Data: db}
	view, err := normalize.BuildView(db, opts.NameHints)
	if err != nil {
		return nil, err
	}
	if view.Changed || opts.ForceViewPipeline {
		s.View = view
		g, err := orm.Build(view.Schemas)
		if err != nil {
			return nil, fmt.Errorf("core: building ORM graph over normalized view: %w", err)
		}
		s.Graph = g
		s.Matcher = match.NewWithIndex(db, view.Schemas, g, view.Sources, idx)
		s.Translator = &translate.Translator{Graph: g, Data: db, Sources: view.Sources, Rewrite: true}
	} else {
		g, err := orm.Build(db.Schemas())
		if err != nil {
			return nil, fmt.Errorf("core: building ORM graph: %w", err)
		}
		s.Graph = g
		s.Matcher = match.NewWithIndex(db, db.Schemas(), g, nil, idx)
		s.Translator = translate.New(g, db)
	}
	s.Generator = pattern.NewGenerator(s.Matcher)
	s.Workers = opts.Workers
	s.Chaos = opts.Chaos
	s.MaxRetries = opts.MaxRetries
	s.RetryBackoff = opts.RetryBackoff
	s.Plan = planck.New(db)
	s.VerifyPlans = opts.VerifyPlans
	s.NoBatch = opts.BatchKernels < 0
	s.Shards = opts.Shards
	s.Backend = opts.Backend
	// Freeze the stored data: later inserts are rejected, and every
	// per-table value index and column dictionary is built now so query
	// execution never mutates shared state (the thread-safety contract of
	// System).
	db.Freeze()
	if opts.MemoCells >= 0 {
		cells := opts.MemoCells
		if cells == 0 {
			cells = DefaultMemoCells
		}
		// Safe to share across statements and requests: the database was
		// frozen above, so every memo key's fragment is deterministic.
		s.Memo = sqldb.NewMemo(cells)
	}
	return s, nil
}

// Unnormalized reports whether the system plans over a normalized view.
func (s *System) Unnormalized() bool { return s.View != nil }

// Interpretation is one ranked reading of a keyword query: its annotated
// query pattern, the generated SQL, and a description of the intent.
type Interpretation struct {
	Pattern     *pattern.Pattern
	SQL         *sqlast.Query
	Description string
}

// Interpret parses the query, generates and ranks the annotated query
// patterns, and translates the top-k of them into SQL. k <= 0 means all.
func (s *System) Interpret(query string, k int) ([]Interpretation, error) {
	return s.InterpretContext(context.Background(), query, k)
}

// InterpretContext is Interpret with the pipeline stages instrumented: when
// the context carries an obs trace or registry, parsing, matching, pattern
// generation, ranking and SQL translation each run under a span, giving the
// per-stage cost breakdown the paper reports in its evaluation (Section 8).
func (s *System) InterpretContext(ctx context.Context, query string, k int) ([]Interpretation, error) {
	_, pspan := obs.Start(ctx, "parse")
	q, err := keyword.Parse(query)
	pspan.End()
	if err != nil {
		return nil, err
	}
	patterns, err := s.Generator.GenerateContext(ctx, q)
	if err != nil {
		return nil, err
	}
	if k > 0 && len(patterns) > k {
		patterns = patterns[:k]
	}
	_, tspan := obs.Start(ctx, "translate")
	defer tspan.End()
	out := make([]Interpretation, 0, len(patterns))
	for _, p := range patterns {
		sql, err := s.Translator.Translate(p)
		if err != nil {
			return nil, fmt.Errorf("core: translating pattern %s: %w", p, err)
		}
		if s.VerifyPlans {
			if fs := s.Plan.CheckInterpretation(p, sql); len(fs) > 0 {
				return nil, fmt.Errorf("core: plan verification failed for pattern %s: %s (%d finding(s))",
					p, fs[0], len(fs))
			}
		}
		out = append(out, Interpretation{Pattern: p, SQL: sql, Description: p.Describe()})
	}
	return out, nil
}

// CheckPlans interprets the query and runs the plan-invariant verifier over
// every translated statement, returning the findings instead of failing (so
// callers can report all of them). k <= 0 means all interpretations.
func (s *System) CheckPlans(query string, k int) ([]planck.Finding, error) {
	q, err := keyword.Parse(query)
	if err != nil {
		return nil, err
	}
	patterns, err := s.Generator.Generate(q)
	if err != nil {
		return nil, err
	}
	if k > 0 && len(patterns) > k {
		patterns = patterns[:k]
	}
	var fs []planck.Finding
	for _, p := range patterns {
		sql, err := s.Translator.Translate(p)
		if err != nil {
			return nil, fmt.Errorf("core: translating pattern %s: %w", p, err)
		}
		fs = append(fs, s.Plan.CheckInterpretation(p, sql)...)
	}
	return fs, nil
}

// Answer is one executed interpretation.
type Answer struct {
	Interpretation
	Result *sqldb.Result
}

// Answer interprets the query and executes the top-k generated SQL
// statements against the stored database. Execution runs on a bounded
// worker pool (see Workers); the returned slice preserves rank order.
func (s *System) Answer(query string, k int) ([]Answer, error) {
	return s.AnswerContext(context.Background(), query, k)
}

// AnswerContext is Answer honoring a context: cancellation is checked before
// each statement starts executing (a statement already running is not
// interrupted).
func (s *System) AnswerContext(ctx context.Context, query string, k int) ([]Answer, error) {
	ins, err := s.InterpretContext(ctx, query, k)
	if err != nil {
		return nil, err
	}
	return s.ExecuteAll(ctx, ins)
}

// AnswerParallel is kept as an alias of Answer for older callers; Answer
// itself now executes on the bounded pool.
func (s *System) AnswerParallel(query string, k int) ([]Answer, error) {
	return s.Answer(query, k)
}

// ExecWorkers resolves the execution pool size Answer uses.
func (s *System) ExecWorkers() int {
	if s.Workers > 0 {
		return s.Workers
	}
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	if n < 1 {
		n = 1
	}
	return n
}

// ShardWorkers resolves the per-statement shard-parallel worker target: the
// configured Shards when positive, single-shard when negative, otherwise
// min(GOMAXPROCS, 8). The inter-statement pool (ExecWorkers) and the
// intra-statement shard workers share the process: sqldb bounds the total
// number of extra kernel goroutines with a process-wide slot pool, so
// stacking both never oversubscribes the machine.
func (s *System) ShardWorkers() int {
	if s.Shards > 0 {
		return s.Shards
	}
	if s.Shards < 0 {
		return 1
	}
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	if n < 1 {
		n = 1
	}
	return n
}

// StatementError describes one interpretation whose statement failed to
// produce an answer after retries.
type StatementError struct {
	// Index is the interpretation's rank position in the executed slice.
	Index int
	// Pattern and SQL identify the failed interpretation.
	Pattern string
	SQL     string
	// Err is the final attempt's error.
	Err error
}

func (e *StatementError) Error() string {
	return fmt.Sprintf("core: executing %s: %v", e.SQL, e.Err)
}

func (e *StatementError) Unwrap() error { return e.Err }

// ExecReport is the degradation-aware outcome of ExecuteAllReport: the
// statements that completed (rank order preserved) and, separately, the ones
// that failed, so the serving layer can return a partial answer instead of
// failing the whole request.
type ExecReport struct {
	Answers []Answer          // completed statements, in rank order
	Failed  []*StatementError // failed statements, in rank order
	Retries int               // transient-fault retry attempts across all statements
}

// Partial reports whether some but not all statements completed.
func (r *ExecReport) Partial() bool { return len(r.Failed) > 0 && len(r.Answers) > 0 }

// Err summarizes the report as a single error for strict callers: nil when
// everything completed, otherwise the first failure — preferring a context
// error so a timed-out request keeps its deadline semantics.
func (r *ExecReport) Err() error {
	if len(r.Failed) == 0 {
		return nil
	}
	for _, f := range r.Failed {
		if errors.Is(f.Err, context.DeadlineExceeded) || errors.Is(f.Err, context.Canceled) {
			return f
		}
	}
	return r.Failed[0]
}

// ExecuteAll executes every interpretation's SQL against the stored database
// on a pool of at most ExecWorkers goroutines, returning the answers in the
// same rank order as ins. The database is frozen (read-only), so the workers
// share it without locking. The first error wins; ctx cancellation stops
// statements that have not started yet and interrupts running ones at the
// next row-batch boundary. Degradation-tolerant callers use
// ExecuteAllReport instead and keep the statements that did complete.
func (s *System) ExecuteAll(ctx context.Context, ins []Interpretation) ([]Answer, error) {
	rep := s.ExecuteAllReport(ctx, ins)
	if err := rep.Err(); err != nil {
		return nil, err
	}
	return rep.Answers, nil
}

// ExecuteAllReport executes every interpretation's SQL on the bounded worker
// pool and reports per-statement outcomes instead of failing the whole batch
// on the first error.
//
// Robustness semantics (see docs/ROBUSTNESS.md):
//
//   - Each statement runs under a deadline derived from the request deadline
//     (a slice of the remaining budget is reserved for rendering), and
//     execution aborts mid-statement when it expires — a goroutine never
//     outlives a cancelled request by more than one row batch.
//   - Injectable-transient faults (chaos.IsTransient) are retried up to
//     MaxRetries times with exponential jittered backoff; real execution
//     errors and context errors surface immediately.
//   - Every degradation event is counted in the registry carried by ctx:
//     retries, and failures labeled by kind (transient, deadline, canceled,
//     error).
func (s *System) ExecuteAllReport(ctx context.Context, ins []Interpretation) *ExecReport {
	rep := &ExecReport{}
	if len(ins) == 0 {
		return rep
	}
	// The execute span covers the wall time of the whole pool run; each
	// statement additionally runs under a nested per-statement span, so a
	// trace shows both the stage cost and how the pool overlapped statements.
	ctx, espan := obs.Start(ctx, "execute")
	defer espan.End()
	sctx, cancel := statementContext(ctx)
	defer cancel()
	workers := s.ExecWorkers()
	if workers > len(ins) {
		workers = len(ins)
	}
	out := make([]*Answer, len(ins))
	errs := make([]error, len(ins))
	var retries atomic.Int64
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				if s.Chaos != nil {
					// Slow/stuck-worker injection: the delay honors the
					// request context, so a stuck worker unsticks the moment
					// the request is cancelled.
					if err := chaos.Sleep(ctx, s.Chaos.Delay(chaos.PointWorker)); err != nil {
						errs[i] = err
						continue
					}
				}
				res, n, err := s.execStatement(sctx, ctx, ins[i], i)
				retries.Add(int64(n))
				if err != nil {
					errs[i] = err
					continue
				}
				out[i] = &Answer{Interpretation: ins[i], Result: res}
			}
		}()
	}
	for i := range ins {
		next <- i
	}
	close(next)
	wg.Wait()
	rep.Retries = int(retries.Load())
	reg := obs.RegistryFrom(ctx)
	if reg != nil && rep.Retries > 0 {
		reg.Counter("kwagg_exec_retries_total",
			"Statement execution retries after injectable-transient faults.").
			Add(uint64(rep.Retries))
	}
	for i := range ins {
		switch {
		case errs[i] != nil:
			rep.Failed = append(rep.Failed, &StatementError{
				Index:   i,
				Pattern: ins[i].Pattern.String(),
				SQL:     ins[i].SQL.String(),
				Err:     errs[i],
			})
			if reg != nil {
				reg.Counter("kwagg_exec_statement_failures_total",
					"Statements that failed after retries, by failure kind.",
					obs.L("kind", failureKind(errs[i]))).Inc()
			}
		case out[i] != nil:
			rep.Answers = append(rep.Answers, *out[i])
		}
	}
	return rep
}

// execStatement runs one interpretation's SQL with the retry policy: sctx
// carries the per-statement deadline, rctx the plain request context used
// for backoff sleeps (so retries are abandoned when the request dies).
func (s *System) execStatement(sctx, rctx context.Context, in Interpretation, idx int) (*sqldb.Result, int, error) {
	maxRetries := s.MaxRetries
	switch {
	case maxRetries == 0:
		maxRetries = DefaultMaxRetries
	case maxRetries < 0:
		maxRetries = 0
	}
	backoff := s.RetryBackoff
	if backoff <= 0 {
		backoff = DefaultRetryBackoff
	}
	var detail string
	if s.Chaos != nil {
		detail = in.SQL.String()
	}
	retried := 0
	for attempt := 0; ; attempt++ {
		_, sspan := obs.Start(rctx, "sql")
		if attempt == 0 {
			sspan.Detail(fmt.Sprintf("stmt %d", idx))
		} else {
			sspan.Detail(fmt.Sprintf("stmt %d retry %d", idx, attempt))
		}
		res, err := s.execAttempt(sctx, in, detail)
		sspan.End()
		if err == nil {
			res.SortRows()
			return res, retried, nil
		}
		if !chaos.IsTransient(err) || attempt >= maxRetries || rctx.Err() != nil {
			return nil, retried, err
		}
		retried++
		// Exponential backoff with up to 50% jitter, abandoned as soon as
		// the request context dies.
		d := chaos.Jitter(backoff << attempt)
		if serr := chaos.Sleep(rctx, d); serr != nil {
			return nil, retried, serr
		}
	}
}

// execAttempt is one execution attempt: chaos statement injection (latency,
// transient error, injected cancellation) followed by the cancellable
// evaluation under the per-statement deadline — on the external backend when
// one is configured, on the embedded engine otherwise.
func (s *System) execAttempt(sctx context.Context, in Interpretation, detail string) (*sqldb.Result, error) {
	if s.Chaos != nil {
		if err := chaos.Sleep(sctx, s.Chaos.Delay(chaos.PointStatement)); err != nil {
			return nil, err
		}
		if err := s.Chaos.Fault(chaos.PointStatement, detail); err != nil {
			return nil, err
		}
	}
	if s.Backend != nil {
		return s.execBackend(sctx, in)
	}
	res, st, err := sqldb.ExecOpts(sctx, s.Data, in.SQL,
		sqldb.ExecConfig{Memo: s.Memo, NoBatch: s.NoBatch, Shards: s.ShardWorkers()})
	if st.Hits > 0 || st.Misses > 0 || st.ShardRuns > 0 {
		if reg := obs.RegistryFrom(sctx); reg != nil {
			if st.Hits > 0 || st.Misses > 0 {
				reg.Counter("kwagg_memo_hits_total",
					"Subplan fragments served from the shared-subplan memo.").Add(uint64(st.Hits))
				reg.Counter("kwagg_memo_misses_total",
					"Subplan fragments computed on a memo miss.").Add(uint64(st.Misses))
			}
			if st.ShardRuns > 0 {
				reg.Counter("kwagg_shard_runs_total",
					"Kernel passes executed shard-parallel.").Add(uint64(st.ShardRuns))
			}
		}
	}
	return res, err
}

// execBackend runs one attempt on the configured external backend and
// counts it: kwagg_backend_statements_total broken down by backend name and
// outcome (ok / transient / error), kwagg_backend_rows_total for answer
// volume. The result rows stream through backend.Collect into the same
// sqldb.Result shape the embedded engine produces, so ranking, caching and
// response rendering never see which engine answered.
func (s *System) execBackend(sctx context.Context, in Interpretation) (*sqldb.Result, error) {
	reg := obs.RegistryFrom(sctx)
	rows, err := s.Backend.Exec(sctx, in.SQL)
	var res *sqldb.Result
	if err == nil {
		res, err = backend.Collect(rows)
	}
	if reg != nil {
		outcome := "ok"
		switch {
		case err == nil:
		case chaos.IsTransient(err):
			outcome = "transient"
		default:
			outcome = "error"
		}
		reg.Counter("kwagg_backend_statements_total",
			"Statement attempts executed on an external backend, by backend and outcome.",
			obs.L("backend", s.Backend.Name()), obs.L("outcome", outcome)).Inc()
		if err == nil {
			reg.Counter("kwagg_backend_rows_total",
				"Rows returned by external-backend statements, by backend.",
				obs.L("backend", s.Backend.Name())).Add(uint64(len(res.Rows)))
		}
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

// statementMarginCap bounds the slice of the request budget reserved for
// rendering the (possibly partial) response after statements finish.
const statementMarginCap = 100 * time.Millisecond

// statementContext derives the per-statement deadline from the request
// deadline: 10% of the remaining budget (capped at statementMarginCap) is
// held back so a request whose statements run long still has time to render
// a partial answer and count the degradation, instead of the whole response
// dying at the wire deadline. Without a request deadline the context is
// returned unchanged.
func statementContext(ctx context.Context) (context.Context, context.CancelFunc) {
	dl, ok := ctx.Deadline()
	if !ok {
		return ctx, func() {}
	}
	//kwlint:ignore detclock deadline budgeting is inherently wall-clock: the margin derives from the caller's ctx deadline
	margin := time.Until(dl) / 10
	if margin > statementMarginCap {
		margin = statementMarginCap
	}
	if margin <= 0 {
		return ctx, func() {}
	}
	return context.WithDeadline(ctx, dl.Add(-margin))
}

// failureKind buckets a statement failure for the degradation counters.
func failureKind(err error) string {
	switch {
	case chaos.IsTransient(err):
		return "transient"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(err, context.Canceled):
		return "canceled"
	default:
		return "error"
	}
}

// BestAnswer returns the first interpretation whose description satisfies
// pick (or the top-ranked one when pick is nil), executed. The experiment
// harness uses pick to select the interpretation matching the paper's query
// description, mirroring how the authors "use the generated SQL statements
// that best match the query descriptions".
func (s *System) BestAnswer(query string, k int, pick func(Interpretation) bool) (*Answer, error) {
	ins, err := s.Interpret(query, k)
	if err != nil {
		return nil, err
	}
	idx := 0
	if pick != nil {
		found := false
		for i, in := range ins {
			if pick(in) {
				idx, found = i, true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("core: no interpretation of %q matches the selector", query)
		}
	}
	res, _, err := sqldb.ExecOpts(nil, s.Data, ins[idx].SQL,
		sqldb.ExecConfig{NoBatch: s.NoBatch, Shards: s.ShardWorkers()})
	if err != nil {
		return nil, fmt.Errorf("core: executing %q: %w", ins[idx].SQL, err)
	}
	res.SortRows()
	return &Answer{Interpretation: ins[idx], Result: res}, nil
}

// Execute runs an arbitrary SQL statement of the supported subset against
// the stored database.
func (s *System) Execute(sql string) (*sqldb.Result, error) {
	q, err := sqldb.Parse(sql)
	if err != nil {
		return nil, err
	}
	res, _, err := sqldb.ExecOpts(nil, s.Data, q,
		sqldb.ExecConfig{NoBatch: s.NoBatch, Shards: s.ShardWorkers()})
	return res, err
}

// DescribeSchema summarises the planning schema: node names, types and
// relations — the ORM schema graph contents (Figures 3 and 9).
func (s *System) DescribeSchema() string {
	var b strings.Builder
	for _, n := range s.Graph.Nodes() {
		fmt.Fprintf(&b, "%s [%s] %s", n.Name, n.Type, n.Relation)
		if s.View != nil {
			src := s.View.Sources[strings.ToLower(n.Relation.Name)]
			if !strings.EqualFold(src, n.Relation.Name) {
				fmt.Fprintf(&b, " <- %s", src)
			}
		}
		for _, c := range n.Components {
			fmt.Fprintf(&b, " +component %s", c)
		}
		fmt.Fprintf(&b, " adj=%v\n", s.Graph.Neighbors(n.Name))
	}
	return b.String()
}
