package core

import (
	"fmt"
	"strings"

	"kwagg/internal/keyword"
	"kwagg/internal/orm"
	"kwagg/internal/pattern"
)

// Explanation is a structured account of how one interpretation was
// produced: how each term was read, which nodes the pattern contains, why
// objects were distinguished, and where relationship projections were
// inserted. The CLI renders it for the \explain command; tests assert on
// its fields.
type Explanation struct {
	Query           string
	TermReadings    []TermReading
	Nodes           []NodeExplain
	Disambiguations []string
	Projections     []string
	Nested          []string
	RankSignals     RankSignals
}

// TermReading explains one query term.
type TermReading struct {
	Term   string
	Role   string // "aggregate", "groupby", or the match kind
	Detail string
}

// NodeExplain describes one pattern node.
type NodeExplain struct {
	Class       string
	Type        string
	Condition   string
	Annotations []string
	Interior    bool
}

// RankSignals carries the ranking signals of Section 3.1.2.
type RankSignals struct {
	ObjectMixedNodes int
	ValueTerms       int
	AvgDistance      float64
	Disambiguated    int
}

// Explain produces the explanation of one interpretation's pattern.
func (s *System) Explain(in Interpretation) *Explanation {
	p := in.Pattern
	ex := &Explanation{Query: p.Query.String()}

	for i, t := range p.Query.Terms {
		tr := TermReading{Term: t.String()}
		switch t.Kind {
		case keyword.Aggregate:
			tr.Role = "aggregate"
			tr.Detail = fmt.Sprintf("apply %s to the operand that follows", t.Agg)
		case keyword.GroupBy:
			tr.Role = "groupby"
			tr.Detail = "group results by the operand that follows"
		default:
			tr.Role = "basic"
			tr.Detail = describeTermUse(p, t.Text)
		}
		_ = i
		ex.TermReadings = append(ex.TermReadings, tr)
	}

	for _, n := range p.Nodes {
		ne := NodeExplain{
			Class:    n.Class,
			Type:     p.Graph.Node(n.Class).Type.String(),
			Interior: !n.FromTerm,
		}
		if n.HasCond() {
			ne.Condition = fmt.Sprintf("%s.%s contains %q (%d matching objects)",
				n.CondRel, n.CondAttr, n.CondTerm, n.CondCount)
		}
		for _, a := range n.Aggs {
			ne.Annotations = append(ne.Annotations, a.String())
		}
		for _, g := range n.GroupBys {
			ne.Annotations = append(ne.Annotations, "GROUPBY("+g.String()+")")
		}
		ex.Nodes = append(ex.Nodes, ne)

		if n.Disamb {
			ex.Disambiguations = append(ex.Disambiguations, fmt.Sprintf(
				"%q matches %d distinct %s objects; grouping on the identifier computes one aggregate per object (Section 3.1.2)",
				n.CondTerm, n.CondCount, n.Class))
		}
	}

	for _, n := range p.Nodes {
		node := p.Graph.Node(n.Class)
		if node.Type != orm.Relationship {
			continue
		}
		adjacent := p.Adjacent(n.ID)
		participants := p.Graph.Participants(n.Class)
		if len(adjacent) < len(participants) {
			var joined, all []string
			for _, a := range adjacent {
				joined = append(joined, p.Nodes[a].Class)
			}
			for _, pt := range participants {
				all = append(all, pt.Node)
			}
			ex.Projections = append(ex.Projections, fmt.Sprintf(
				"%s is a relationship among {%s} but the pattern joins only {%s}; its foreign keys are projected with DISTINCT to avoid duplicate counting (Section 3.1.3)",
				n.Class, strings.Join(all, ", "), strings.Join(joined, ", ")))
		}
	}

	for _, f := range p.Nested {
		ex.Nested = append(ex.Nested, fmt.Sprintf(
			"%s is applied to the result of the inner aggregate via a nested query (Section 3.2)", f))
	}

	ex.RankSignals = RankSignals{
		ObjectMixedNodes: p.ObjectMixedCount(),
		ValueTerms:       p.ValueTerms,
		AvgDistance:      p.AvgTargetConditionDistance(),
		Disambiguated:    p.DisambCount(),
	}
	return ex
}

func describeTermUse(p *pattern.Pattern, term string) string {
	for _, n := range p.Nodes {
		if n.HasCond() && strings.EqualFold(n.CondTerm, term) {
			return fmt.Sprintf("matches values of %s.%s", n.CondRel, n.CondAttr)
		}
	}
	for _, n := range p.Nodes {
		if strings.EqualFold(n.Class, term) || strings.EqualFold(n.Class+"s", term) ||
			strings.EqualFold(n.Class, term+"s") {
			return fmt.Sprintf("matches the %s relation name", n.Class)
		}
	}
	for _, n := range p.Nodes {
		rel := p.Graph.Node(n.Class).Relation
		if rel.HasAttr(term) {
			return fmt.Sprintf("matches attribute %s of %s", term, rel.Name)
		}
	}
	return "context for adjacent terms"
}

// String renders the explanation as indented text.
func (e *Explanation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "query: %s\n", e.Query)
	b.WriteString("terms:\n")
	for _, t := range e.TermReadings {
		fmt.Fprintf(&b, "  %-16s %-10s %s\n", t.Term, t.Role, t.Detail)
	}
	b.WriteString("pattern nodes:\n")
	for _, n := range e.Nodes {
		role := ""
		if n.Interior {
			role = " (interior, added to connect the pattern)"
		}
		fmt.Fprintf(&b, "  %s [%s]%s\n", n.Class, n.Type, role)
		if n.Condition != "" {
			fmt.Fprintf(&b, "    condition: %s\n", n.Condition)
		}
		for _, a := range n.Annotations {
			fmt.Fprintf(&b, "    annotation: %s\n", a)
		}
	}
	for _, d := range e.Disambiguations {
		fmt.Fprintf(&b, "disambiguation: %s\n", d)
	}
	for _, p := range e.Projections {
		fmt.Fprintf(&b, "projection: %s\n", p)
	}
	for _, n := range e.Nested {
		fmt.Fprintf(&b, "nested: %s\n", n)
	}
	fmt.Fprintf(&b, "ranking: %d object/mixed nodes, %d value terms, avg distance %.2f, %d disambiguated\n",
		e.RankSignals.ObjectMixedNodes, e.RankSignals.ValueTerms,
		e.RankSignals.AvgDistance, e.RankSignals.Disambiguated)
	return b.String()
}
