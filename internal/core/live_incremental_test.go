package core

import (
	"context"
	"testing"

	"kwagg/internal/dataset/university"
	"kwagg/internal/obs"
	"kwagg/internal/relation"
)

// liveQueries are the answer-bearing queries the incremental commit must
// keep byte-identical to the full-refreeze and directly-built baselines.
var liveQueries = []string{
	"Green SUM Credit",
	"Green",
	"COUNT Student GROUPBY Sname",
}

// commitBatch is one epoch's worth of tuple-level ingest, keyed by table.
// The second batch carries a NULL string (Sname) — expressible only through
// IngestTuples, since string coercion keeps "" as the empty string.
var commitBatches = []map[string][]relation.Tuple{
	{
		"Student": {{"s9", "Green", int64(23)}},
		"Enrol":   {{"s9", "c2", "A"}},
	},
	{
		"Student": {{"s10", nil, int64(20)}, {"s11", "Green", int64(25)}},
		"Enrol":   {{"s11", "c1", "B"}},
	},
	{
		"Course": {{"c9", "Databases II", 6.0}},
		"Enrol":  {{"s9", "c9", "A"}, {"s11", "c9", "C"}},
	},
}

// applyBatch ingests one commitBatch into a live engine.
func applyBatch(t *testing.T, live *Live, batch map[string][]relation.Tuple) {
	t.Helper()
	for _, table := range []string{"Student", "Course", "Enrol"} {
		rows := batch[table]
		if len(rows) == 0 {
			continue
		}
		if _, err := live.IngestTuples(table, rows); err != nil {
			t.Fatalf("IngestTuples(%s): %v", table, err)
		}
	}
}

// directDatabase builds the ground-truth database for the first k batches
// applied on top of the university seed, inserting rows before Freeze.
func directDatabase(t *testing.T, k int) *relation.Database {
	t.Helper()
	db := university.New()
	for _, batch := range commitBatches[:k] {
		for _, table := range []string{"Student", "Course", "Enrol"} {
			tb := db.Table(table)
			for _, tu := range batch[table] {
				if err := tb.Insert(tu.Clone()); err != nil {
					t.Fatalf("Insert into %s: %v", table, err)
				}
			}
		}
	}
	return db
}

// TestLiveCommitIncrementalMatchesFull drives K consecutive incremental
// commits and checks, after every one, that answers are byte-identical to
// (a) a live engine pinned to the full-refreeze path fed the same batches
// and (b) a from-scratch core.Open of the directly-built database.
func TestLiveCommitIncrementalMatchesFull(t *testing.T) {
	inc, err := OpenLive(university.New(), nil)
	if err != nil {
		t.Fatal(err)
	}
	full, err := OpenLive(university.New(), &Options{FullRefreeze: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for k, batch := range commitBatches {
		applyBatch(t, inc, batch)
		applyBatch(t, full, batch)
		if ep, err := inc.Commit(ctx); err != nil || ep != uint64(k+1) {
			t.Fatalf("incremental Commit %d = %d, %v", k, ep, err)
		}
		if ep, err := full.Commit(ctx); err != nil || ep != uint64(k+1) {
			t.Fatalf("full Commit %d = %d, %v", k, ep, err)
		}
		truth, err := Open(directDatabase(t, k+1), nil)
		if err != nil {
			t.Fatalf("Open(direct %d): %v", k+1, err)
		}
		for _, q := range liveQueries {
			want := answerBytes(t, truth, q)
			if got := answerBytes(t, inc.System(), q); got != want {
				t.Fatalf("epoch %d query %q: incremental diverged from direct build:\nwant:\n%s\ngot:\n%s",
					k+1, q, want, got)
			}
			if got := answerBytes(t, full.System(), q); got != want {
				t.Fatalf("epoch %d query %q: full refreeze diverged from direct build:\nwant:\n%s\ngot:\n%s",
					k+1, q, want, got)
			}
		}
	}
}

// TestLiveCommitBuildMetrics pins the new commit observability: the build
// histogram records every commit, reused blocks accumulate, and
// BuildDuration reports the last build's wall time.
func TestLiveCommitBuildMetrics(t *testing.T) {
	live, err := OpenLive(university.New(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if live.BuildDuration() != 0 {
		t.Fatalf("BuildDuration before any commit = %v, want 0", live.BuildDuration())
	}
	reg := obs.NewRegistry()
	ctx := obs.WithRegistry(context.Background(), reg)
	applyBatch(t, live, commitBatches[0])
	if _, err := live.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	applyBatch(t, live, commitBatches[1])
	if _, err := live.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	h := reg.Histogram("kwagg_epoch_build_seconds", "", nil).Snapshot()
	if h.Count != 2 {
		t.Fatalf("kwagg_epoch_build_seconds count = %d, want 2", h.Count)
	}
	if reg.Counter("kwagg_epoch_reused_blocks_total", "").Value() == 0 {
		t.Fatal("kwagg_epoch_reused_blocks_total stayed 0 across incremental commits")
	}
	if live.BuildDuration() <= 0 {
		t.Fatalf("BuildDuration = %v, want > 0", live.BuildDuration())
	}
}

// TestLiveIngestTuplesValidation mirrors the string-path batch atomicity.
func TestLiveIngestTuplesValidation(t *testing.T) {
	live, err := OpenLive(university.New(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := live.IngestTuples("NoSuch", []relation.Tuple{{"x"}}); err == nil {
		t.Fatal("expected unknown-table error")
	}
	if _, err := live.IngestTuples("Student", []relation.Tuple{{"s9", "Green", int64(23)}, {"s10"}}); err == nil {
		t.Fatal("expected arity error")
	}
	if live.Pending() != 0 {
		t.Fatalf("failed batches buffered %d rows", live.Pending())
	}
	if n, err := live.IngestTuples("Student", []relation.Tuple{{"s9", "Green", int64(23)}}); err != nil || n != 1 {
		t.Fatalf("IngestTuples = %d, %v", n, err)
	}
}
