package core

import (
	"context"
	"fmt"
	"testing"

	"kwagg/internal/relation"
)

// benchItemRows builds rows [lo, hi) of the bench table deterministically:
// unique integer keys, names over a bounded token vocabulary (realistic
// text — the inverted index's vocabulary stays O(language), not O(rows)),
// low-cardinality categories and periodically-NULL prices.
func benchItemRows(lo, hi int) []relation.Tuple {
	out := make([]relation.Tuple, 0, hi-lo)
	for i := lo; i < hi; i++ {
		var price relation.Value = float64(i%101) + 0.25
		if i%53 == 0 {
			price = nil
		}
		out = append(out, relation.Tuple{
			int64(i),
			fmt.Sprintf("widget alpha%d beta%d", i%97, i%89),
			fmt.Sprintf("cat%d", i%13),
			price,
		})
	}
	return out
}

func benchItemDB(b *testing.B, n int) *relation.Database {
	b.Helper()
	s := relation.NewSchema("Item", "Iid INT", "Name", "Cat", "Price FLOAT").Key("Iid")
	tb := relation.NewTable(s)
	if err := tb.AppendShared(benchItemRows(0, n)); err != nil {
		b.Fatal(err)
	}
	db := relation.NewDatabase("bench")
	db.Add(tb)
	return db
}

// BenchmarkEpochCommit measures Live.Commit across the N existing × M new
// rows grid, in both modes: the incremental delta freeze (the default) and
// the from-scratch full refreeze (Options.FullRefreeze), which is the
// before/after comparison the PR's acceptance pins — committing a 1k-row
// batch into a 100k-row database must be ≥10x faster incrementally. rows/s
// counts committed (new) rows per wall-second of Commit; ingest happens
// outside the timer. The database grows by M rows per iteration in both
// modes, exactly as a live deployment's would.
func BenchmarkEpochCommit(b *testing.B) {
	for _, n := range []int{10_000, 100_000} {
		for _, m := range []int{100, 1_000} {
			for _, mode := range []string{"incremental", "full"} {
				b.Run(fmt.Sprintf("rows=%d/batch=%d/%s", n, m, mode), func(b *testing.B) {
					opts := &Options{FullRefreeze: mode == "full"}
					live, err := OpenLive(benchItemDB(b, n), opts)
					if err != nil {
						b.Fatal(err)
					}
					ctx := context.Background()
					next := n
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						b.StopTimer()
						rows := benchItemRows(next, next+m)
						next += m
						if _, err := live.IngestTuples("Item", rows); err != nil {
							b.Fatal(err)
						}
						b.StartTimer()
						if _, err := live.Commit(ctx); err != nil {
							b.Fatal(err)
						}
					}
					b.StopTimer()
					if live.Epoch() != uint64(b.N) {
						b.Fatalf("epoch %d after %d commits", live.Epoch(), b.N)
					}
					b.ReportMetric(float64(m)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
				})
			}
		}
	}
}
