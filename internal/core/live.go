// Epoch-based live ingest. The engine's execution substrate is built on
// frozen, immutable databases (dictionaries, column blocks, value indexes and
// both caches all assume the data never changes), so mutation is modeled as a
// sequence of immutable epochs: rows accumulate in a mutable write buffer on
// the side, and Commit builds the next frozen database — the previous
// epoch's rows followed by the buffered ones, assembled incrementally from
// the previous epoch's frozen state (see relation.ExtendFrozenDatabase) —
// opens a fresh System over it
// and atomically swaps it in. Queries that started on epoch N keep running on
// epoch N's System to completion (the old database is immutable and
// garbage-collected when the last reader drops it), so every completed answer
// is byte-identical to some single epoch — never a torn mix of two.
package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"kwagg/internal/obs"
	"kwagg/internal/relation"
)

// liveState is one immutable epoch: a fully-opened System and its sequence
// number. Swapped atomically as a unit so readers never observe a System from
// one epoch paired with another epoch's number.
type liveState struct {
	sys   *System
	epoch uint64
}

// Live wraps a System with epoch-based live ingest. Snapshot/System/Epoch are
// safe for unsynchronized concurrent use (a single atomic pointer load);
// Ingest and Commit may be called concurrently with queries and with each
// other — the write buffer is mutex-guarded and Commit serializes on the same
// mutex.
type Live struct {
	opts *Options

	cur atomic.Pointer[liveState]

	mu      sync.Mutex                  // guards buf/pending; serializes Commit
	buf     map[string][]relation.Tuple // lower-cased table name -> buffered rows
	pending int

	lastBuild atomic.Int64 // wall time of the most recent Commit build, in nanoseconds
}

// OpenLive opens db for keyword search (freezing it — see Open) and wraps the
// resulting System as epoch 0 of a live engine. opts is retained and reused
// to open every later epoch, so per-epoch Systems share the configuration
// (workers, chaos, kernels, shards) but never the built state — each epoch
// gets its own memo and plan checker, keyed to its own frozen data.
func OpenLive(db *relation.Database, opts *Options) (*Live, error) {
	sys, err := Open(db, opts)
	if err != nil {
		return nil, err
	}
	if opts == nil {
		opts = &Options{}
	}
	l := &Live{opts: opts, buf: make(map[string][]relation.Tuple)}
	l.cur.Store(&liveState{sys: sys, epoch: 0})
	return l, nil
}

// Snapshot returns the current epoch's System and its epoch number as one
// consistent pair. Callers answering a query should take one snapshot and use
// its System throughout, so the whole answer comes from a single epoch even
// if a Commit lands mid-query.
func (l *Live) Snapshot() (*System, uint64) {
	st := l.cur.Load()
	return st.sys, st.epoch
}

// System returns the current epoch's System.
func (l *Live) System() *System { return l.cur.Load().sys }

// Epoch returns the current epoch number (0 until the first Commit).
func (l *Live) Epoch() uint64 { return l.cur.Load().epoch }

// Pending reports the number of ingested rows buffered but not yet committed.
func (l *Live) Pending() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.pending
}

// Ingest coerces rows (one string per attribute, in declaration order; empty
// strings become NULL for non-string types — see relation.Coerce) against the
// named table's schema and appends them to the write buffer. The batch is
// atomic: any unknown table, arity mismatch or coercion failure rejects the
// whole call. Buffered rows are invisible to queries until Commit. Returns
// the total number of pending rows after the append.
func (l *Live) Ingest(table string, rows [][]string) (int, error) {
	t := l.System().Data.Table(table)
	if t == nil {
		return 0, fmt.Errorf("core: ingest into unknown table %q", table)
	}
	schema := t.Schema
	tuples := make([]relation.Tuple, len(rows))
	for i, r := range rows {
		if len(r) != len(schema.Attributes) {
			return 0, fmt.Errorf("core: ingest into %s: row %d has %d fields, want %d",
				schema.Name, i, len(r), len(schema.Attributes))
		}
		tu := make(relation.Tuple, len(r))
		for j, field := range r {
			v, err := relation.Coerce(field, schema.Attributes[j].Type)
			if err != nil {
				return 0, fmt.Errorf("core: ingest into %s: row %d attribute %s: %w",
					schema.Name, i, schema.Attributes[j].Name, err)
			}
			tu[j] = v
		}
		tuples[i] = tu
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	key := strings.ToLower(schema.Name)
	l.buf[key] = append(l.buf[key], tuples...)
	l.pending += len(tuples)
	return l.pending, nil
}

// IngestTuples is Ingest for rows that already carry their declared types —
// the tuple-level twin of the string-coercing path (string coercion cannot
// express a NULL string value, which the differential suites need). Arity is
// checked per tuple and the batch is atomic; the tuples are retained by
// reference and must not be mutated afterwards. Returns the total number of
// pending rows after the append.
func (l *Live) IngestTuples(table string, tuples []relation.Tuple) (int, error) {
	t := l.System().Data.Table(table)
	if t == nil {
		return 0, fmt.Errorf("core: ingest into unknown table %q", table)
	}
	schema := t.Schema
	for i, tu := range tuples {
		if len(tu) != len(schema.Attributes) {
			return 0, fmt.Errorf("core: ingest into %s: row %d has %d values, want %d",
				schema.Name, i, len(tu), len(schema.Attributes))
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	key := strings.ToLower(schema.Name)
	l.buf[key] = append(l.buf[key], tuples...)
	l.pending += len(tuples)
	return l.pending, nil
}

// BuildDuration returns the wall time the most recent Commit spent building
// and opening its epoch (zero before the first commit). Served as
// epoch_build_ms by /api/stats.
func (l *Live) BuildDuration() time.Duration {
	return time.Duration(l.lastBuild.Load())
}

// Commit freezes the write buffer into the next epoch: the current epoch's
// frozen tables are extended with the buffered rows (in ingest order) via
// the incremental delta builder — dictionaries grow private tails for unseen
// values only, full 1024-row column blocks and untouched posting lists carry
// over by reference, and the inverted keyword index is patched with only the
// new tuples' tokens — then a fresh System is opened over the result and
// atomically swapped in, returning the new epoch number. The build is
// O(new rows + touched index entries + per-epoch slice headers) instead of
// the O(total rows) full re-freeze (kept behind Options.FullRefreeze as the
// comparison baseline); both paths produce byte-identical epochs, which the
// incremental-vs-full differential suites gate. With nothing pending Commit
// returns the current epoch unchanged. On a build error the buffer and
// current epoch are kept, so the caller can repair and retry.
//
// Dictionary-ID prefix stability makes the delta sound: a full freeze
// interns values in row order, so the previous epoch's dictionaries, encoded
// rows and cached remap tables are exactly the prefix of the next epoch's.
// New rows land in the trailing rows — the tail shards — of each table,
// keeping shard-parallel answers byte-identical across epochs for data the
// epochs share. In-flight queries keep the old System (immutable) to
// completion; the caches attached to it age out with it.
func (l *Live) Commit(ctx context.Context) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.cur.Load()
	if l.pending == 0 {
		return st.epoch, nil
	}
	elapsed := obs.Stopwatch()
	_, span := obs.Start(ctx, "epoch_build")
	defer span.End()
	var (
		sys   *System
		stats relation.DeltaStats
		err   error
	)
	if l.opts.FullRefreeze {
		sys, err = l.buildFull(st.sys)
	} else {
		sys, stats, err = l.buildDelta(st.sys)
	}
	if err != nil {
		return st.epoch, fmt.Errorf("core: building epoch %d: %w", st.epoch+1, err)
	}
	swapped := &liveState{sys: sys, epoch: st.epoch + 1}
	committed := l.pending
	l.cur.Store(swapped)
	l.buf = make(map[string][]relation.Tuple)
	l.pending = 0
	d := elapsed()
	l.lastBuild.Store(int64(d))
	if reg := obs.RegistryFrom(ctx); reg != nil {
		reg.Counter("kwagg_epoch_swaps_total",
			"Epoch commits that swapped in a rebuilt database.").Inc()
		reg.Counter("kwagg_epoch_rows_committed_total",
			"Ingested rows frozen into an epoch by Commit.").Add(uint64(committed))
		reg.Gauge("kwagg_epoch_current",
			"Current live-ingest epoch number.").Set(float64(swapped.epoch))
		reg.Histogram("kwagg_epoch_build_seconds",
			"Wall time Commit spent building and opening an epoch.", nil).Observe(d.Seconds())
		reg.Counter("kwagg_epoch_reused_blocks_total",
			"Column blocks carried into a new epoch by reference instead of rebuilt.").
			Add(uint64(stats.ReusedBlocks))
	}
	return swapped.epoch, nil
}

// buildDelta opens the next epoch over the incrementally extended database:
// the frozen tables grow in place (relation.ExtendFrozenDatabase), the
// inverted index is patched with only the new rows, and openSystem redoes
// just the schema-sized work. l.mu must be held.
func (l *Live) buildDelta(old *System) (*System, relation.DeltaStats, error) {
	prev := make(map[string]int)
	for _, t := range old.Data.Tables() {
		prev[strings.ToLower(t.Schema.Name)] = t.Len()
	}
	next, stats, err := relation.ExtendFrozenDatabase(old.Data, l.buf)
	if err != nil {
		return nil, stats, err
	}
	idx, _ := old.Matcher.Index().AppendRows(next, prev)
	sys, err := openSystem(next, l.opts, idx)
	if err != nil {
		return nil, stats, err
	}
	return sys, stats, nil
}

// buildFull opens the next epoch from scratch — the O(total rows) re-freeze
// the incremental path replaced, retained behind Options.FullRefreeze as the
// comparison baseline. Tuples are immutable by convention, so both epochs
// share them. l.mu must be held.
func (l *Live) buildFull(old *System) (*System, error) {
	next := relation.NewDatabase(old.Data.Name)
	for _, t := range old.Data.Tables() {
		nt := relation.NewTable(t.Schema.Clone())
		if err := nt.AppendShared(t.Tuples, l.buf[strings.ToLower(t.Schema.Name)]); err != nil {
			return nil, err
		}
		next.Add(nt)
	}
	return Open(next, l.opts)
}
