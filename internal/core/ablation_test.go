package core

import (
	"testing"

	"kwagg/internal/dataset/university"
	"kwagg/internal/relation"
	"kwagg/internal/sqldb"
)

// TestAblationDedupRule shows that the Section 3.1.3 duplicate-elimination
// rule is what makes Q2 correct: with it disabled, the engine reproduces
// SQAK's wrong total of 35 instead of 25.
func TestAblationDedupRule(t *testing.T) {
	s := mustOpen(t, university.New())

	correct := findAnswer(t, s, "Java SUM Price", "DISTINCT")
	f, _ := relation.AsFloat(correct.Result.Rows[0][len(correct.Result.Rows[0])-1])
	if f != 25 {
		t.Fatalf("with the rule: want 25, got %v", f)
	}

	s.Translator.DisableDedup = true
	defer func() { s.Translator.DisableDedup = false }()
	ins, err := s.Interpret("Java SUM Price", 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sqldb.Exec(s.Data, ins[0].SQL)
	if err != nil {
		t.Fatal(err)
	}
	f, _ = relation.AsFloat(res.Rows[0][len(res.Rows[0])-1])
	if f != 35 {
		t.Fatalf("without the rule the engine should reproduce SQAK's 35, got %v\n%s", f, ins[0].SQL)
	}
}

// TestAblationDisambiguation shows that the Section 3.1.2 forking is what
// separates the two students called Green: with it disabled, only the
// merged total of 13 is available.
func TestAblationDisambiguation(t *testing.T) {
	s := mustOpen(t, university.New())
	s.Generator.DisableDisambiguation = true
	defer func() { s.Generator.DisableDisambiguation = false }()

	as, err := s.Answer("Green SUM Credit", 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range as {
		if len(a.Result.Rows) == 2 {
			t.Fatalf("disambiguation disabled, yet a per-object interpretation exists:\n%s", a.SQL)
		}
	}
	f, _ := relation.AsFloat(as[0].Result.Rows[0][len(as[0].Result.Rows[0])-1])
	if f != 13 {
		t.Fatalf("merged total should be SQAK's 13, got %v", f)
	}
}
