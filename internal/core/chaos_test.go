package core

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"kwagg/internal/chaos"
	"kwagg/internal/dataset/university"
	"kwagg/internal/obs"
)

// scriptedInjector injects, per statement attempt, the scripted faults in
// order (nil entries succeed), then stops injecting.
type scriptedInjector struct {
	mu     sync.Mutex
	faults []error
	calls  int
}

func (i *scriptedInjector) Fault(p chaos.Point, detail string) error {
	if p != chaos.PointStatement {
		return nil
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.calls++
	if len(i.faults) == 0 {
		return nil
	}
	f := i.faults[0]
	i.faults = i.faults[1:]
	return f
}

func (i *scriptedInjector) Delay(chaos.Point) time.Duration { return 0 }

func transient() error { return &chaos.Transient{Point: chaos.PointStatement} }

func openChaos(t *testing.T, inj chaos.Injector) *System {
	t.Helper()
	s, err := Open(university.New(), &Options{Chaos: inj})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func interpretations(t *testing.T, s *System, query string, k int) []Interpretation {
	t.Helper()
	ins, err := s.Interpret(query, k)
	if err != nil || len(ins) < k {
		t.Fatalf("Interpret(%q): %v (%d interpretations, want %d)", query, err, len(ins), k)
	}
	return ins[:k]
}

// TestRetryMetricsAndKinds runs one statement through two transient faults
// (retried to success) and checks the registry counters the degradation
// layer promises: kwagg_exec_retries_total and, for a permanent failure,
// kwagg_exec_statement_failures_total{kind=error}.
func TestRetryMetricsAndKinds(t *testing.T) {
	inj := &scriptedInjector{faults: []error{transient(), transient()}}
	s := openChaos(t, inj)
	ins := interpretations(t, s, "Green SUM Credit", 1)
	reg := obs.NewRegistry()
	ctx := obs.WithRegistry(context.Background(), reg)

	rep := s.ExecuteAllReport(ctx, ins)
	if len(rep.Failed) != 0 || len(rep.Answers) != 1 {
		t.Fatalf("retried statement should complete: %+v", rep.Err())
	}
	if rep.Retries != 2 {
		t.Fatalf("Retries = %d, want 2", rep.Retries)
	}
	if rep.Partial() || rep.Err() != nil {
		t.Fatalf("complete report misreports: partial=%v err=%v", rep.Partial(), rep.Err())
	}
	if n := reg.Counter("kwagg_exec_retries_total", "").Value(); n != 2 {
		t.Fatalf("kwagg_exec_retries_total = %d, want 2", n)
	}

	// A permanent (non-transient) fault fails without retrying and is
	// counted with kind=error.
	inj.mu.Lock()
	inj.faults = []error{errors.New("disk on fire")}
	inj.calls = 0
	inj.mu.Unlock()
	rep = s.ExecuteAllReport(ctx, ins)
	if len(rep.Failed) != 1 || len(rep.Answers) != 0 {
		t.Fatalf("permanent fault should fail the statement: %+v", rep)
	}
	if inj.calls != 1 {
		t.Fatalf("permanent fault retried: %d attempts", inj.calls)
	}
	f := rep.Failed[0]
	if !strings.Contains(f.Error(), "disk on fire") || f.Unwrap() == nil {
		t.Fatalf("StatementError lost its cause: %v", f.Error())
	}
	if n := reg.Counter("kwagg_exec_statement_failures_total", "",
		obs.L("kind", "error")).Value(); n != 1 {
		t.Fatalf("failures{kind=error} = %d, want 1", n)
	}
}

// TestTransientBudgetAndPartial: a statement that keeps faulting past the
// retry budget fails with kind=transient, while the other statement
// completes — the report is partial and Err() surfaces the failure.
func TestTransientBudgetAndPartial(t *testing.T) {
	// 1 + DefaultMaxRetries attempts all fault; the second statement's
	// attempts find the script empty and succeed.
	inj := &scriptedInjector{faults: []error{transient(), transient(), transient()}}
	s := openChaos(t, inj)
	s.Workers = 1 // serialize so the script hits one statement
	ins := interpretations(t, s, "Green SUM Credit", 2)
	reg := obs.NewRegistry()
	ctx := obs.WithRegistry(context.Background(), reg)

	rep := s.ExecuteAllReport(ctx, ins)
	if !rep.Partial() || len(rep.Answers) != 1 || len(rep.Failed) != 1 {
		t.Fatalf("want a partial report, got %d answers + %d failures",
			len(rep.Answers), len(rep.Failed))
	}
	if rep.Err() == nil || !chaos.IsTransient(rep.Err()) {
		t.Fatalf("Err() = %v, want the exhausted transient fault", rep.Err())
	}
	if n := reg.Counter("kwagg_exec_statement_failures_total", "",
		obs.L("kind", "transient")).Value(); n != 1 {
		t.Fatalf("failures{kind=transient} = %d, want 1", n)
	}
}

// TestInjectedCancellationKind: injected cancellations are counted with
// kind=canceled and never retried.
func TestInjectedCancellationKind(t *testing.T) {
	inj := chaos.New(chaos.Config{Rate: 1, Cancel: 1, Seed: 9,
		Points: []chaos.Point{chaos.PointStatement}})
	s := openChaos(t, inj)
	ins := interpretations(t, s, "Green SUM Credit", 1)
	reg := obs.NewRegistry()
	ctx := obs.WithRegistry(context.Background(), reg)

	rep := s.ExecuteAllReport(ctx, ins)
	if len(rep.Failed) != 1 || rep.Retries != 0 {
		t.Fatalf("injected cancellation must fail without retry: %+v", rep)
	}
	if err := rep.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err() = %v, want Canceled", err)
	}
	if n := reg.Counter("kwagg_exec_statement_failures_total", "",
		obs.L("kind", "canceled")).Value(); n != 1 {
		t.Fatalf("failures{kind=canceled} = %d, want 1", n)
	}
}

// TestStatementDeadlineKind: a request deadline that expires mid-statement
// (stretched by injected statement latency) is counted with kind=deadline.
func TestStatementDeadlineKind(t *testing.T) {
	s := openChaos(t, &slowInjector{d: time.Minute})
	ins := interpretations(t, s, "Green SUM Credit", 1)
	reg := obs.NewRegistry()
	ctx := obs.WithRegistry(context.Background(), reg)
	ctx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()

	rep := s.ExecuteAllReport(ctx, ins)
	if len(rep.Failed) != 1 {
		t.Fatalf("deadline must fail the statement: %+v", rep)
	}
	if err := rep.Err(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Err() = %v, want DeadlineExceeded", err)
	}
	if n := reg.Counter("kwagg_exec_statement_failures_total", "",
		obs.L("kind", "deadline")).Value(); n != 1 {
		t.Fatalf("failures{kind=deadline} = %d, want 1", n)
	}
}
