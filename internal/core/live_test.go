package core

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"kwagg/internal/chaos"
	"kwagg/internal/dataset/university"
	"kwagg/internal/leakcheck"
	"kwagg/internal/obs"
	"kwagg/internal/relation"
)

// epoch1Rows are the live-ingested rows every live test commits as epoch 1:
// a third Green student enrolled in Database, which changes the answer of the
// paper's running query "Green SUM Credit".
var epoch1Rows = map[string][][]string{
	"Student": {{"s9", "Green", "23"}},
	"Enrol":   {{"s9", "c2", "A"}},
}

// epoch1Database builds the epoch-1 database directly (the old tuples plus
// the ingested rows inserted before Freeze) — the ground truth a committed
// epoch must be byte-identical to.
func epoch1Database(t *testing.T) *relation.Database {
	t.Helper()
	db := university.New()
	db.Table("Student").MustInsert("s9", "Green", int64(23))
	db.Table("Enrol").MustInsert("s9", "c2", "A")
	return db
}

// answerBytes renders every top-3 answer of the query — SQL plus sorted
// result rows — as one string, the unit of byte-identity across epochs.
func answerBytes(t *testing.T, s *System, query string) string {
	t.Helper()
	as, err := s.Answer(query, 3)
	if err != nil {
		t.Fatalf("Answer(%q): %v", query, err)
	}
	var b strings.Builder
	for _, a := range as {
		b.WriteString(a.SQL.String())
		b.WriteString("\n")
		b.WriteString(a.Result.String())
		b.WriteString("\n")
	}
	return b.String()
}

func TestLiveIngestCommit(t *testing.T) {
	live, err := OpenLive(university.New(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ep := live.Epoch(); ep != 0 {
		t.Fatalf("fresh engine at epoch %d, want 0", ep)
	}
	const query = "Green SUM Credit"
	before := answerBytes(t, live.System(), query)

	if n, err := live.Ingest("Student", epoch1Rows["Student"]); err != nil || n != 1 {
		t.Fatalf("Ingest(Student) = %d, %v", n, err)
	}
	if n, err := live.Ingest("Enrol", epoch1Rows["Enrol"]); err != nil || n != 2 {
		t.Fatalf("Ingest(Enrol) = %d, %v", n, err)
	}
	if live.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", live.Pending())
	}
	// Buffered rows are invisible until Commit.
	if got := answerBytes(t, live.System(), query); got != before {
		t.Fatalf("uncommitted rows leaked into answers:\nbefore:\n%s\nafter ingest:\n%s", before, got)
	}

	reg := obs.NewRegistry()
	ctx := obs.WithRegistry(context.Background(), reg)
	ep, err := live.Commit(ctx)
	if err != nil || ep != 1 {
		t.Fatalf("Commit = %d, %v; want epoch 1", ep, err)
	}
	if live.Epoch() != 1 || live.Pending() != 0 {
		t.Fatalf("after commit: epoch %d pending %d, want 1 and 0", live.Epoch(), live.Pending())
	}
	after := answerBytes(t, live.System(), query)
	if after == before {
		t.Fatal("committed rows did not change the answer")
	}
	// The committed epoch is byte-identical to the directly-built database.
	truth, err := Open(epoch1Database(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := answerBytes(t, truth, query); after != want {
		t.Fatalf("epoch 1 diverged from the directly-built database:\nwant:\n%s\ngot:\n%s", want, after)
	}
	if n := reg.Counter("kwagg_epoch_swaps_total", "").Value(); n != 1 {
		t.Fatalf("kwagg_epoch_swaps_total = %d, want 1", n)
	}
	if n := reg.Counter("kwagg_epoch_rows_committed_total", "").Value(); n != 2 {
		t.Fatalf("kwagg_epoch_rows_committed_total = %d, want 2", n)
	}
	if g := reg.Gauge("kwagg_epoch_current", "").Value(); g != 1 {
		t.Fatalf("kwagg_epoch_current = %v, want 1", g)
	}

	// Committing with nothing pending is a no-op: same epoch, no swap.
	if ep, err := live.Commit(ctx); err != nil || ep != 1 {
		t.Fatalf("empty Commit = %d, %v; want 1", ep, err)
	}
	if n := reg.Counter("kwagg_epoch_swaps_total", "").Value(); n != 1 {
		t.Fatalf("empty Commit swapped: kwagg_epoch_swaps_total = %d", n)
	}
}

func TestLiveIngestRejectsBadBatches(t *testing.T) {
	live, err := OpenLive(university.New(), nil)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		table string
		rows  [][]string
	}{
		{"unknown table", "Nope", [][]string{{"x"}}},
		{"arity", "Student", [][]string{{"s9", "Green"}}},
		{"coercion", "Student", [][]string{{"s9", "Green", "not-a-number"}}},
		// A bad row anywhere rejects the whole batch, including its good rows.
		{"atomic batch", "Student", [][]string{{"s9", "Green", "23"}, {"s10", "Blue", "x"}}},
	}
	for _, c := range cases {
		if _, err := live.Ingest(c.table, c.rows); err == nil {
			t.Errorf("%s: Ingest accepted bad input", c.name)
		}
		if live.Pending() != 0 {
			t.Fatalf("%s: rejected batch left %d pending rows", c.name, live.Pending())
		}
	}
	// Empty string in a typed column is NULL, not an error (relation.Coerce).
	if _, err := live.Ingest("Student", [][]string{{"s9", "Green", ""}}); err != nil {
		t.Fatalf("NULL age rejected: %v", err)
	}
	if _, err := live.Commit(context.Background()); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	res, err := live.System().Execute("SELECT S.Sid FROM Student S WHERE S.Sid = 's9'")
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("committed NULL-age row not queryable: %v (%d rows)", err, len(res.Rows))
	}
}

// TestLiveDictionaryPrefixStable pins the shard-tail property Commit's doc
// comment promises: re-freezing the old tuples first and in order assigns
// them the same dictionary IDs as the previous epoch, so ingested rows land
// only in the trailing rows of each table.
func TestLiveDictionaryPrefixStable(t *testing.T) {
	live, err := OpenLive(university.New(), nil)
	if err != nil {
		t.Fatal(err)
	}
	old := live.System().Data
	for table, rows := range epoch1Rows {
		if _, err := live.Ingest(table, rows); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := live.Commit(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, ot := range old.Tables() {
		nt := live.System().Data.Table(ot.Schema.Name)
		if nt.Len() < ot.Len() {
			t.Fatalf("%s shrank: %d -> %d rows", ot.Schema.Name, ot.Len(), nt.Len())
		}
		_, oldEnc, _ := ot.Encoding()
		_, newEnc, _ := nt.Encoding()
		for i, id := range oldEnc {
			if newEnc[i] != id {
				t.Fatalf("%s: dictionary ID of flat cell %d changed %d -> %d across the epoch",
					ot.Schema.Name, i, id, newEnc[i])
			}
		}
	}
}

// TestLiveEpochSwapMidQueryByteIdentity is the satellite-4 chaos replay:
// queries run concurrently with ingest and an epoch swap, under injected
// statement faults and latency, and every answer that completes must be
// byte-identical to exactly one epoch's baseline — epochs may race, answers
// may not tear. leakcheck additionally demands that no ingest, freeze or
// pool goroutine outlives the test.
func TestLiveEpochSwapMidQueryByteIdentity(t *testing.T) {
	defer leakcheck.Check(t)()
	const query = "Green SUM Credit"

	// Baselines from independently-built Systems, one per epoch.
	base0, err := Open(university.New(), nil)
	if err != nil {
		t.Fatal(err)
	}
	base1, err := Open(epoch1Database(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	want0 := answerBytes(t, base0, query)
	want1 := answerBytes(t, base1, query)
	if want0 == want1 {
		t.Fatal("epochs indistinguishable; the test proves nothing")
	}

	// The live engine runs with injected transient faults and latency at the
	// statement and worker points, stretching queries across the swap.
	inj := chaos.New(chaos.Config{
		Rate:    0.3,
		Seed:    11,
		Latency: 2 * time.Millisecond,
		Points:  []chaos.Point{chaos.PointStatement, chaos.PointWorker},
	})
	live, err := OpenLive(university.New(), &Options{Chaos: inj})
	if err != nil {
		t.Fatal(err)
	}

	const queriers = 4
	answers := make([][]string, queriers)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < queriers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < 8; i++ {
				// One snapshot per query: the whole answer comes from a
				// single epoch even when the swap lands mid-flight.
				sys, _ := live.Snapshot()
				as, err := sys.Answer(query, 3)
				if err != nil {
					// Injected faults may exhaust the retry budget; a failed
					// query returns no answer and that is fine — the
					// invariant is over completed answers only.
					continue
				}
				var b strings.Builder
				for _, a := range as {
					b.WriteString(a.SQL.String())
					b.WriteString("\n")
					b.WriteString(a.Result.String())
					b.WriteString("\n")
				}
				answers[w] = append(answers[w], b.String())
			}
		}(w)
	}
	close(start)
	// Ingest and commit the epoch swap while the queriers are mid-flight.
	for table, rows := range epoch1Rows {
		if _, err := live.Ingest(table, rows); err != nil {
			t.Fatal(err)
		}
	}
	if ep, err := live.Commit(context.Background()); err != nil || ep != 1 {
		t.Fatalf("Commit = %d, %v", ep, err)
	}
	wg.Wait()

	completed, hit1 := 0, false
	for w := range answers {
		for i, got := range answers[w] {
			completed++
			switch got {
			case want0:
			case want1:
				hit1 = true
			default:
				t.Fatalf("querier %d answer %d matches neither epoch baseline (torn epoch?):\n%s", w, i, got)
			}
		}
	}
	if completed == 0 {
		t.Fatal("no query completed; the chaos rate starved the test")
	}
	// Queries issued after wg saw the swap must observe epoch 1.
	if final := answerBytes(t, live.System(), query); final != want1 {
		t.Fatalf("post-swap answer is not epoch 1's:\n%s", final)
	}
	_ = hit1 // pre-swap snapshots may dominate; observing epoch 1 mid-race is not required
}
