package core

import (
	"strings"
	"testing"

	"kwagg/internal/dataset/university"
)

func TestExplainQ1(t *testing.T) {
	s := mustOpen(t, university.New())
	ins, err := s.Interpret("Green SUM Credit", 1)
	if err != nil {
		t.Fatal(err)
	}
	ex := s.Explain(ins[0])
	if len(ex.TermReadings) != 3 {
		t.Fatalf("term readings: %v", ex.TermReadings)
	}
	if ex.TermReadings[1].Role != "aggregate" {
		t.Errorf("SUM role: %v", ex.TermReadings[1])
	}
	if !strings.Contains(ex.TermReadings[0].Detail, "Student.Sname") {
		t.Errorf("Green detail: %v", ex.TermReadings[0])
	}
	if len(ex.Disambiguations) != 1 {
		t.Errorf("Green should be disambiguated: %v", ex.Disambiguations)
	}
	if ex.RankSignals.ObjectMixedNodes != 2 || ex.RankSignals.Disambiguated != 1 {
		t.Errorf("rank signals: %+v", ex.RankSignals)
	}
	text := ex.String()
	for _, frag := range []string{"query:", "terms:", "pattern nodes:", "disambiguation:", "ranking:"} {
		if !strings.Contains(text, frag) {
			t.Errorf("explanation text missing %q", frag)
		}
	}
}

func TestExplainProjection(t *testing.T) {
	s := mustOpen(t, university.New())
	ins, err := s.Interpret("COUNT Lecturer GROUPBY Course", 1)
	if err != nil {
		t.Fatal(err)
	}
	ex := s.Explain(ins[0])
	if len(ex.Projections) != 1 || !strings.Contains(ex.Projections[0], "Teach") {
		t.Errorf("Teach projection should be explained: %v", ex.Projections)
	}
	if !strings.Contains(ex.Projections[0], "Textbook") {
		t.Errorf("the unused participant should be named: %v", ex.Projections)
	}
}

func TestExplainNested(t *testing.T) {
	s := mustOpen(t, university.New())
	ins, err := s.Interpret("AVG COUNT Lecturer GROUPBY Course", 1)
	if err != nil {
		t.Fatal(err)
	}
	ex := s.Explain(ins[0])
	if len(ex.Nested) != 1 || !strings.Contains(ex.Nested[0], "AVG") {
		t.Errorf("nested aggregate should be explained: %v", ex.Nested)
	}
}

func TestExplainInteriorNodes(t *testing.T) {
	s := mustOpen(t, university.New())
	ins, err := s.Interpret("Green George Code", 0)
	if err != nil {
		t.Fatal(err)
	}
	ex := s.Explain(ins[0])
	interior := 0
	for _, n := range ex.Nodes {
		if n.Interior {
			interior++
		}
	}
	if interior == 0 {
		t.Errorf("Figure 4 pattern has interior Enrol nodes: %+v", ex.Nodes)
	}
}
