package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"kwagg/internal/chaos"
	"kwagg/internal/dataset/university"
	"kwagg/internal/leakcheck"
)

// slowInjector stretches every statement attempt so a request can be
// cancelled while the pool is mid-flight.
type slowInjector struct{ d time.Duration }

func (i *slowInjector) Fault(chaos.Point, string) error { return nil }

func (i *slowInjector) Delay(p chaos.Point) time.Duration {
	if p == chaos.PointStatement || p == chaos.PointWorker {
		return i.d
	}
	return 0
}

// TestExecuteAllNoLeakOnCancel cancels a request while the worker pool is
// stuck in injected latency: ExecuteAllReport must return promptly with the
// cancellation accounted, and every pool goroutine must unwind — a worker
// never outlives the request it served.
func TestExecuteAllNoLeakOnCancel(t *testing.T) {
	check := leakcheck.Check(t)
	defer check()
	s, err := Open(university.New(), &Options{Chaos: &slowInjector{d: time.Minute}})
	if err != nil {
		t.Fatal(err)
	}
	ins, err := s.Interpret("Green SUM Credit", 2)
	if err != nil || len(ins) == 0 {
		t.Fatalf("Interpret: %v (%d interpretations)", err, len(ins))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	//kwlint:ignore detclock the wall-clock bound on cancelled execution is the property under test
	start := time.Now()
	rep := s.ExecuteAllReport(ctx, ins)
	//kwlint:ignore detclock the wall-clock bound on cancelled execution is the property under test
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("cancelled execution took %v; workers waited out injected latency", took)
	}
	if len(rep.Answers) != 0 || len(rep.Failed) != len(ins) {
		t.Fatalf("want every statement failed on cancellation, got %d answers + %d failures",
			len(rep.Answers), len(rep.Failed))
	}
	if err := rep.Err(); !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
		t.Fatalf("report error = %v, want a context error", err)
	}
}
