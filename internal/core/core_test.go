package core

import (
	"strings"
	"testing"

	"kwagg/internal/dataset/university"
	"kwagg/internal/relation"
)

func mustOpen(t *testing.T, db *relation.Database) *System {
	t.Helper()
	s, err := Open(db, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

// findAnswer returns the first executed answer whose SQL contains all the
// given fragments.
func findAnswer(t *testing.T, s *System, query string, frags ...string) *Answer {
	t.Helper()
	as, err := s.Answer(query, 0)
	if err != nil {
		t.Fatalf("Answer(%q): %v", query, err)
	}
	for i := range as {
		sql := as[i].SQL.String()
		ok := true
		for _, f := range frags {
			if !strings.Contains(sql, f) {
				ok = false
				break
			}
		}
		if ok {
			return &as[i]
		}
	}
	var got []string
	for _, a := range as {
		got = append(got, a.SQL.String())
	}
	t.Fatalf("no interpretation of %q contains %v; got:\n%s", query, frags, strings.Join(got, "\n"))
	return nil
}

// TestQ1_GreenSumCredit reproduces the introduction's Q1: the total credits
// per student called Green must be computed per object (5 for s2, 8 for s3),
// not merged (13) as SQAK does.
func TestQ1_GreenSumCredit(t *testing.T) {
	s := mustOpen(t, university.New())
	a := findAnswer(t, s, "Green SUM Credit", "GROUP BY")
	if len(a.Result.Rows) != 2 {
		t.Fatalf("want one row per Green, got %d rows:\n%s", len(a.Result.Rows), a.Result)
	}
	var sums []float64
	for _, row := range a.Result.Rows {
		f, _ := relation.AsFloat(row[len(row)-1])
		sums = append(sums, f)
	}
	if !(sums[0] == 5 && sums[1] == 8 || sums[0] == 8 && sums[1] == 5) {
		t.Fatalf("want credits {5,8}, got %v\n%s", sums, a.Result)
	}
}

// TestQ2_JavaSumPrice reproduces Q2: the total textbook price for the Java
// course must project Teach on (Code,Bid) first, giving 25, not 35.
func TestQ2_JavaSumPrice(t *testing.T) {
	s := mustOpen(t, university.New())
	a := findAnswer(t, s, "Java SUM Price", "DISTINCT")
	if len(a.Result.Rows) != 1 {
		t.Fatalf("want 1 row, got:\n%s", a.Result)
	}
	f, _ := relation.AsFloat(a.Result.Rows[0][len(a.Result.Rows[0])-1])
	if f != 25 {
		t.Fatalf("want total price 25 (b1+b2 counted once), got %v\nSQL: %s", f, a.SQL)
	}
}

// TestQ4_Example5 reproduces Example 5: {Green George COUNT Code} with
// disambiguation counts courses per distinct Green jointly taken with
// George: s2 shares c1, s3 shares c1 and c3 with George.
func TestQ4_Example5(t *testing.T) {
	s := mustOpen(t, university.New())
	a := findAnswer(t, s, "Green George COUNT Code", "GROUP BY")
	if len(a.Result.Rows) != 2 {
		t.Fatalf("want 2 rows (s2, s3), got:\n%s\nSQL: %s", a.Result, a.SQL.Pretty())
	}
	counts := map[string]int64{}
	for _, row := range a.Result.Rows {
		counts[relation.Format(row[0])] = row[len(row)-1].(int64)
	}
	if counts["s2"] != 1 || counts["s3"] != 2 {
		t.Fatalf("want s2=1, s3=2, got %v", counts)
	}
}

// TestQ5_Example6 reproduces Example 6: {COUNT Lecturer GROUPBY Course} must
// project Teach on (Lid,Code) so a lecturer using two textbooks counts once:
// c1 -> 2 lecturers, c2 -> 1, c3 -> 1.
func TestQ5_Example6(t *testing.T) {
	s := mustOpen(t, university.New())
	a := findAnswer(t, s, "COUNT Lecturer GROUPBY Course", "DISTINCT")
	want := map[string]int64{"c1": 2, "c2": 1, "c3": 1}
	if len(a.Result.Rows) != len(want) {
		t.Fatalf("want %d rows, got:\n%s\nSQL: %s", len(want), a.Result, a.SQL.Pretty())
	}
	for _, row := range a.Result.Rows {
		code := relation.Format(row[0])
		if row[len(row)-1].(int64) != want[code] {
			t.Fatalf("course %s: want %d, got %v\nSQL: %s", code, want[code], row[len(row)-1], a.SQL.Pretty())
		}
	}
}

// TestExample7_NestedAggregate reproduces Example 7: {AVG COUNT Lecturer
// GROUPBY Course} averages the per-course lecturer counts: (2+1+1)/3.
func TestExample7_NestedAggregate(t *testing.T) {
	s := mustOpen(t, university.New())
	a := findAnswer(t, s, "AVG COUNT Lecturer GROUPBY Course", "AVG(")
	if len(a.Result.Rows) != 1 {
		t.Fatalf("want single row, got:\n%s", a.Result)
	}
	f, _ := relation.AsFloat(a.Result.Rows[0][len(a.Result.Rows[0])-1])
	if f < 1.33 || f > 1.34 {
		t.Fatalf("want avg 4/3, got %v\nSQL: %s", f, a.SQL.Pretty())
	}
}

// TestQ3_UnnormalizedLecturer reproduces Q3 on the Figure 2 database: the
// number of departments in the Engineering faculty is 1, not 2 (SQAK counts
// the duplicated Did in Lecturer twice).
func TestQ3_UnnormalizedLecturer(t *testing.T) {
	s, err := Open(university.NewDenormalizedLecturer(), &Options{NameHints: university.DenormalizedLecturerHints()})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if !s.Unnormalized() {
		t.Fatal("Figure 2 database should be detected as unnormalized")
	}
	a := findAnswer(t, s, "Engineering COUNT Department", "COUNT(")
	if len(a.Result.Rows) != 1 {
		t.Fatalf("want 1 row, got:\n%s\nSQL: %s", a.Result, a.SQL.Pretty())
	}
	if n := a.Result.Rows[0][len(a.Result.Rows[0])-1].(int64); n != 1 {
		t.Fatalf("want 1 department, got %d\nSQL: %s", n, a.SQL.Pretty())
	}
}

// TestExample9_UnnormalizedEnrolment reproduces Example 9/10: Q4 on the
// single-relation Enrolment database returns the same per-student counts as
// the normalized database.
func TestExample9_UnnormalizedEnrolment(t *testing.T) {
	s, err := Open(university.NewEnrolment(), &Options{NameHints: university.EnrolmentHints()})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if !s.Unnormalized() {
		t.Fatal("Figure 8 database should be detected as unnormalized")
	}
	a := findAnswer(t, s, "Green George COUNT Code", "GROUP BY")
	if len(a.Result.Rows) != 2 {
		t.Fatalf("want 2 rows, got:\n%s\nSQL: %s", a.Result, a.SQL.Pretty())
	}
	counts := map[string]int64{}
	for _, row := range a.Result.Rows {
		counts[relation.Format(row[0])] = row[len(row)-1].(int64)
	}
	if counts["s2"] != 1 || counts["s3"] != 2 {
		t.Fatalf("want s2=1, s3=2, got %v\nSQL: %s", counts, a.SQL.Pretty())
	}
}
