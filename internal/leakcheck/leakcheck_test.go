package leakcheck

import (
	"strings"
	"testing"
	"time"
)

// recorder captures Errorf calls so the checker's failure path can be tested
// without failing the real test.
type recorder struct {
	testing.TB
	failed  bool
	message string
}

func (r *recorder) Helper() {}

func (r *recorder) Errorf(format string, args ...interface{}) {
	r.failed = true
	r.message = format
	for _, a := range args {
		if s, ok := a.(string); ok {
			r.message += " " + s
		}
	}
}

func TestCleanTestPasses(t *testing.T) {
	r := &recorder{}
	check := Check(r)
	done := make(chan struct{})
	go func() { close(done) }() // spawn and exit before the check
	<-done
	check()
	if r.failed {
		t.Fatalf("clean test reported a leak: %s", r.message)
	}
}

func TestDrainingGoroutineIsNotALeak(t *testing.T) {
	r := &recorder{}
	check := Check(r)
	// Exits on its own, but only after the first comparison has failed —
	// the retry loop must absorb it.
	go func() { time.Sleep(50 * time.Millisecond) }()
	check()
	if r.failed {
		t.Fatalf("slow-but-exiting goroutine reported as leak: %s", r.message)
	}
}

func TestLeakIsDetected(t *testing.T) {
	r := &recorder{}
	check := Check(r)
	block := make(chan struct{})
	defer close(block)
	go func() { <-block }()
	start := time.Now()
	check()
	if !r.failed {
		t.Fatal("blocked goroutine not reported as a leak")
	}
	if !strings.Contains(r.message, "leakcheck") {
		t.Fatalf("leak report does not name the creation site: %q", r.message)
	}
	if time.Since(start) < retryFor {
		t.Fatal("checker gave up before the retry window elapsed")
	}
}
