// Package leakcheck is a dependency-free goroutine-leak checker for tests,
// in the style of goleak: snapshot the live goroutines when the test starts,
// and at the end demand that every goroutine the test spawned has exited.
//
// Usage:
//
//	func TestSomething(t *testing.T) {
//		defer leakcheck.Check(t)()
//		...
//	}
//
// Goroutines are identified by their creation site (the "created by" frame),
// so the checker is insensitive to goroutine IDs and to unrelated tests
// running earlier in the same process: only sites with MORE live goroutines
// at the end than at the start count as leaks. Shutdown is asynchronous
// almost everywhere (worker pools drain, HTTP connections unwind), so the
// final comparison retries for up to two seconds before failing.
package leakcheck

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// retryFor bounds how long Check waits for spawned goroutines to unwind.
const retryFor = 2 * time.Second

// Check snapshots the current goroutines and returns the function that
// enforces the no-leak property; defer it immediately. Anything the test
// still needs to shut down (servers, engines) must be deferred after Check
// so it closes first.
func Check(t testing.TB) func() {
	t.Helper()
	before := snapshot()
	return func() {
		t.Helper()
		deadline := time.Now().Add(retryFor)
		var leaked map[string]int
		for {
			leaked = diff(snapshot(), before)
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		var sites []string
		for site, n := range leaked {
			sites = append(sites, fmt.Sprintf("%d leaked from %s", n, site))
		}
		sort.Strings(sites)
		t.Errorf("goroutines still running %s after the test:\n%s",
			retryFor, strings.Join(sites, "\n"))
	}
}

// snapshot counts the live goroutines per creation site.
func snapshot() map[string]int {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	counts := make(map[string]int)
	for _, stanza := range strings.Split(string(buf[:n]), "\n\n") {
		if site := creationSite(stanza); site != "" {
			counts[site]++
		}
	}
	return counts
}

// creationSite extracts the "created by" function of one goroutine stanza,
// or "" for goroutines without one (main, the runtime's own) — those are
// never the test's to leak.
func creationSite(stanza string) string {
	const marker = "created by "
	i := strings.LastIndex(stanza, marker)
	if i < 0 {
		return ""
	}
	site := stanza[i+len(marker):]
	if j := strings.IndexAny(site, " \n"); j >= 0 {
		site = site[:j]
	}
	return site
}

// diff reports the creation sites with more live goroutines in after than in
// before, with the excess count.
func diff(after, before map[string]int) map[string]int {
	leaked := make(map[string]int)
	for site, n := range after {
		if extra := n - before[site]; extra > 0 {
			leaked[site] = extra
		}
	}
	return leaked
}
