// Package aggcell implements the aggregate keyword search of Zhou & Pei,
// "Answering aggregate keyword queries on relational databases using minimal
// group-bys" (EDBT 2009) — reference [17] of the paper and its closest
// related work. Given a universal relation and a set of keywords, it finds
// the minimal aggregate cells: group-by cells (an assignment of values to a
// subset of the dimension attributes, the rest wildcarded) whose tuple
// group covers every keyword, such that no strictly more specific cell also
// covers them.
//
// The paper's Section 7 positions this as complementary but insufficient:
// minimal group-bys summarise where keywords co-occur, but cannot express
// aggregate functions over attributes of specific objects or GROUPBY an
// object class, which is exactly what the semantic approach adds. The
// implementation exists to make that contrast concrete and testable.
package aggcell

import (
	"fmt"
	"sort"
	"strings"

	"kwagg/internal/relation"
)

// Cell is one aggregate cell: Values assigns a concrete value to a subset
// of the dimension attributes (missing attributes are wildcards), Rows
// lists the tuple ids of the cell's group.
type Cell struct {
	Values map[string]relation.Value
	Rows   []int
}

// Specificity is the number of bound dimensions.
func (c *Cell) Specificity() int { return len(c.Values) }

// Covers reports whether every keyword's match set intersects the group.
func (c *Cell) covers(matches [][]map[int]bool) bool {
	for _, kw := range matches {
		hit := false
		for _, rows := range kw {
			for _, r := range c.Rows {
				if rows[r] {
					hit = true
					break
				}
			}
			if hit {
				break
			}
		}
		if !hit {
			return false
		}
	}
	return true
}

// String renders the cell as (dim=value, ..., *) with group size.
func (c *Cell) String() string {
	keys := make([]string, 0, len(c.Values))
	for k := range c.Values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%s", k, relation.Format(c.Values[k]))
	}
	return fmt.Sprintf("(%s) [%d tuples]", strings.Join(parts, ", "), len(c.Rows))
}

// moreSpecificThan reports whether c binds a superset of o's bindings with
// the same values (c's group is contained in o's).
func (c *Cell) moreSpecificThan(o *Cell) bool {
	if len(c.Values) <= len(o.Values) {
		return false
	}
	for k, v := range o.Values {
		cv, ok := c.Values[k]
		if !ok || !relation.Equal(cv, v) {
			return false
		}
	}
	return true
}

// Searcher answers aggregate keyword queries over one universal relation.
type Searcher struct {
	table *relation.Table
	dims  []string
	// MaxSeeds bounds the per-keyword match tuples combined into candidate
	// cells (the full algorithm enumerates all combinations).
	MaxSeeds int
}

// New creates a searcher over the universal relation with the given
// dimension attributes. Dimensions default to every string-typed attribute.
func New(t *relation.Table, dims ...string) *Searcher {
	if len(dims) == 0 {
		for _, a := range t.Schema.Attributes {
			if a.Type == relation.TypeString {
				dims = append(dims, a.Name)
			}
		}
	}
	return &Searcher{table: t, dims: dims, MaxSeeds: 16}
}

// Search returns the minimal aggregate cells covering all keywords, most
// specific first. It returns nil when some keyword matches no tuple.
func (s *Searcher) Search(keywords ...string) []*Cell {
	if len(keywords) == 0 {
		return nil
	}
	// Match sets: per keyword, per dimension, the matching tuple ids.
	matches := make([][]map[int]bool, len(keywords))
	seeds := make([][]int, len(keywords))
	for i, kw := range keywords {
		matches[i] = make([]map[int]bool, len(s.dims))
		seen := make(map[int]bool)
		for d, dim := range s.dims {
			matches[i][d] = make(map[int]bool)
			ai := s.table.Schema.AttrIndex(dim)
			if ai < 0 {
				continue
			}
			for r, tu := range s.table.Tuples {
				str, ok := tu[ai].(string)
				if ok && relation.ContainsFold(str, kw) {
					matches[i][d][r] = true
					if !seen[r] && len(seeds[i]) < s.MaxSeeds {
						seen[r] = true
						seeds[i] = append(seeds[i], r)
					}
				}
			}
		}
		if len(seeds[i]) == 0 {
			return nil // keyword matches nothing
		}
	}

	// Candidate cells: the agreement ("meet") of one matching tuple per
	// keyword over the dimension attributes.
	var candidates []*Cell
	dedup := make(map[string]bool)
	combos := [][]int{{}}
	for i := range keywords {
		var next [][]int
		for _, prefix := range combos {
			for _, r := range seeds[i] {
				next = append(next, append(append([]int(nil), prefix...), r))
			}
		}
		combos = next
	}
	for _, combo := range combos {
		cell := s.meet(combo)
		key := cell.String()
		if dedup[key] {
			continue
		}
		dedup[key] = true
		s.fillGroup(cell)
		if cell.covers(matches) {
			candidates = append(candidates, cell)
		}
	}

	// Keep only minimal cells: those with no strictly more specific
	// covering candidate.
	var minimal []*Cell
	for _, c := range candidates {
		dominated := false
		for _, o := range candidates {
			if o != c && o.moreSpecificThan(c) {
				dominated = true
				break
			}
		}
		if !dominated {
			minimal = append(minimal, c)
		}
	}
	sort.Slice(minimal, func(i, j int) bool {
		if minimal[i].Specificity() != minimal[j].Specificity() {
			return minimal[i].Specificity() > minimal[j].Specificity()
		}
		return minimal[i].String() < minimal[j].String()
	})
	return minimal
}

// meet computes the cell binding the dimensions on which all tuples agree.
func (s *Searcher) meet(rows []int) *Cell {
	cell := &Cell{Values: make(map[string]relation.Value)}
	for _, dim := range s.dims {
		ai := s.table.Schema.AttrIndex(dim)
		if ai < 0 {
			continue
		}
		v := s.table.Tuples[rows[0]][ai]
		agree := true
		for _, r := range rows[1:] {
			if !relation.Equal(s.table.Tuples[r][ai], v) {
				agree = false
				break
			}
		}
		if agree && !relation.Null(v) {
			cell.Values[strings.ToLower(dim)] = v
		}
	}
	return cell
}

// fillGroup materializes the cell's tuple group.
func (s *Searcher) fillGroup(c *Cell) {
	for r := range s.table.Tuples {
		ok := true
		for dim, v := range c.Values {
			ai := s.table.Schema.AttrIndex(dim)
			if !relation.Equal(s.table.Tuples[r][ai], v) {
				ok = false
				break
			}
		}
		if ok {
			c.Rows = append(c.Rows, r)
		}
	}
}

// Count returns the COUNT(*) aggregate of the cell's group — the only
// statistic minimal group-bys provide out of the box, in contrast to the
// semantic approach's per-object aggregate functions.
func (c *Cell) Count() int { return len(c.Rows) }
