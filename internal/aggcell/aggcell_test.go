package aggcell

import (
	"strings"
	"testing"

	"kwagg/internal/dataset/university"
	"kwagg/internal/relation"
)

func enrolment(t *testing.T) *relation.Table {
	t.Helper()
	return university.NewEnrolment().Table("Enrolment")
}

func TestSingleKeywordCells(t *testing.T) {
	s := New(enrolment(t), "Sname", "Title", "Grade")
	cells := Search(t, s, "Java")
	// The most specific covering cells bind Title=Java; groups contain the
	// three Java enrolments.
	found := false
	for _, c := range cells {
		if v, ok := c.Values["title"]; ok && relation.Equal(v, "Java") {
			found = true
			if c.Count() == 0 {
				t.Error("group must not be empty")
			}
		}
	}
	if !found {
		t.Fatalf("no cell binds Title=Java: %v", cells)
	}
}

func Search(t *testing.T, s *Searcher, kws ...string) []*Cell {
	t.Helper()
	cells := s.Search(kws...)
	if cells == nil {
		t.Fatalf("Search(%v) found nothing", kws)
	}
	return cells
}

func TestTwoKeywordsCoOccurrence(t *testing.T) {
	s := New(enrolment(t), "Sname", "Title", "Grade")
	cells := Search(t, s, "Green", "Java")
	// Green students take Java: a covering cell exists, e.g. (Title=Java) or
	// (Sname=Green, Title=Java).
	for _, c := range cells {
		rows := map[int]bool{}
		for _, r := range c.Rows {
			rows[r] = true
		}
		// The group must contain a Green tuple and a Java tuple.
		greenHit, javaHit := false, false
		tb := enrolment(t)
		for r := range rows {
			if sv, _ := tb.Value(r, "Sname").(string); relation.ContainsFold(sv, "Green") {
				greenHit = true
			}
			if tv, _ := tb.Value(r, "Title").(string); relation.ContainsFold(tv, "Java") {
				javaHit = true
			}
		}
		if !greenHit || !javaHit {
			t.Errorf("cell %v does not cover both keywords", c)
		}
	}
}

func TestMinimality(t *testing.T) {
	s := New(enrolment(t), "Sname", "Title", "Grade")
	cells := Search(t, s, "Green", "Java")
	for i, c := range cells {
		for j, o := range cells {
			if i != j && o.moreSpecificThan(c) {
				t.Errorf("cell %v dominated by %v — not minimal", c, o)
			}
		}
	}
}

func TestNoMatch(t *testing.T) {
	s := New(enrolment(t))
	if cells := s.Search("zzznothing"); cells != nil {
		t.Errorf("unmatched keyword should return nil, got %v", cells)
	}
	if cells := s.Search(); cells != nil {
		t.Errorf("empty query should return nil")
	}
}

func TestDefaultDimensions(t *testing.T) {
	s := New(enrolment(t))
	// String attributes only: Sid, Code, Sname, Title, Grade (Age and
	// Credit are numeric).
	if len(s.dims) != 5 {
		t.Errorf("default dimensions: %v", s.dims)
	}
}

func TestCellString(t *testing.T) {
	c := &Cell{Values: map[string]relation.Value{"title": "Java"}, Rows: []int{0, 1}}
	str := c.String()
	if !strings.Contains(str, "title=Java") || !strings.Contains(str, "[2 tuples]") {
		t.Errorf("Cell.String: %s", str)
	}
}

// TestContrastWithSemanticApproach documents the related-work gap the paper
// exploits: minimal group-bys answer "where do Green and Java co-occur" with
// COUNT(*) of tuple groups, but cannot compute SUM(Credit) per distinct
// student — they have no object identity at all.
func TestContrastWithSemanticApproach(t *testing.T) {
	s := New(enrolment(t), "Sname", "Title", "Grade")
	cells := Search(t, s, "Green")
	for _, c := range cells {
		if _, bindsSid := c.Values["sid"]; bindsSid {
			t.Error("Sid is not a dimension; group-bys cannot distinguish the two Greens")
		}
	}
	// A coarser searcher that only groups by Sname puts both Green students
	// into one (Sname=Green) group of 3 tuples: the 13-credit merge the
	// paper's Q1 warns about is structural here.
	coarse := New(enrolment(t), "Sname")
	cells = Search(t, coarse, "Green")
	if len(cells) != 1 {
		t.Fatalf("one Sname group expected: %v", cells)
	}
	if cells[0].Count() != 3 { // s2 has 1 enrolment, s3 has 2
		t.Errorf("Sname=Green group should hold 3 tuples, got %d", cells[0].Count())
	}
}
