package normalize

import (
	"testing"

	"kwagg/internal/relation"
)

func TestMinimalCoverRemovesRedundancy(t *testing.T) {
	fds := []relation.FD{
		{LHS: []string{"A"}, RHS: []string{"B"}},
		{LHS: []string{"B"}, RHS: []string{"C"}},
		{LHS: []string{"A"}, RHS: []string{"C"}},      // redundant (transitivity)
		{LHS: []string{"A", "B"}, RHS: []string{"C"}}, // extraneous B
	}
	cover := minimalCover(fds)
	for _, fd := range cover {
		if len(fd.LHS) > 1 {
			t.Errorf("extraneous attributes not removed: %v", fd)
		}
	}
	// The cover must still derive everything the original did.
	if !relation.Determines([]string{"A"}, []string{"B", "C"}, cover) {
		t.Errorf("cover lost dependencies: %v", cover)
	}
	if len(cover) != 2 {
		t.Errorf("cover should have 2 FDs, got %v", cover)
	}
}

func TestViewNameFallback(t *testing.T) {
	s := relation.NewSchema("Wide", "userid", "uname", "groupkey").Key("userid", "groupkey").
		Dep([]string{"userid"}, "uname")
	out := Synthesize(s)
	for _, ns := range out {
		name := viewName(ns, s, nil)
		if name == "" {
			t.Errorf("fallback name empty for key %v", ns.PrimaryKey)
		}
	}
}
