package normalize_test

import (
	"strings"
	"testing"

	"kwagg/internal/dataset/acmdl"
	"kwagg/internal/dataset/tpch"
	"kwagg/internal/dataset/university"
	"kwagg/internal/normalize"
	"kwagg/internal/relation"
)

func enrolmentSchema() *relation.Schema {
	return university.NewEnrolment().Schemas()[0]
}

func TestCandidateKeysSimple(t *testing.T) {
	s := relation.NewSchema("Student", "Sid", "Sname", "Age INT").Key("Sid")
	keys := normalize.CandidateKeys(s)
	if len(keys) != 1 || !relation.SameAttrSet(keys[0], []string{"Sid"}) {
		t.Errorf("keys: %v", keys)
	}
}

func TestCandidateKeysComposite(t *testing.T) {
	keys := normalize.CandidateKeys(enrolmentSchema())
	if len(keys) != 1 || !relation.SameAttrSet(keys[0], []string{"Sid", "Code"}) {
		t.Errorf("Enrolment keys: %v", keys)
	}
}

func TestCandidateKeysMultiple(t *testing.T) {
	// A <-> B are mutually determining: both {A} and {B} are keys.
	s := relation.NewSchema("R", "A", "B", "C").Key("A").
		Dep([]string{"A"}, "B").
		Dep([]string{"B"}, "A", "C")
	keys := normalize.CandidateKeys(s)
	if len(keys) != 2 {
		t.Fatalf("want two candidate keys, got %v", keys)
	}
}

func TestIs3NF(t *testing.T) {
	for _, s := range university.New().Schemas() {
		if !normalize.Is3NF(s) {
			t.Errorf("%s should be in 3NF", s.Name)
		}
	}
	if normalize.Is3NF(enrolmentSchema()) {
		t.Error("Enrolment violates 3NF (Sid -> Sname)")
	}
	for _, s := range tpch.DenormalizedSchema() {
		switch s.Name {
		case "Ordering", "Customer":
			if normalize.Is3NF(s) {
				t.Errorf("%s should violate 3NF", s.Name)
			}
		default:
			if !normalize.Is3NF(s) {
				t.Errorf("%s should be in 3NF", s.Name)
			}
		}
	}
}

func TestIs2NF(t *testing.T) {
	// Enrolment violates 2NF: Sname depends on Sid, part of the key.
	if normalize.Is2NF(enrolmentSchema()) {
		t.Error("Enrolment violates 2NF")
	}
	// A 2NF-but-not-3NF relation: transitive dependency via a non-key attr.
	s := relation.NewSchema("Lect", "Lid", "Did", "Fid").Key("Lid").
		Dep([]string{"Did"}, "Fid")
	if !normalize.Is2NF(s) {
		t.Error("Lect is in 2NF (no partial dependency)")
	}
	if normalize.Is3NF(s) {
		t.Error("Lect violates 3NF (Did -> Fid transitive)")
	}
}

// TestSynthesizeEnrolment reproduces Example 8: the Enrolment relation
// decomposes into Student'(Sid, Sname, Age), Course'(Code, Title, Credit)
// and Enrol'(Sid, Code, Grade).
func TestSynthesizeEnrolment(t *testing.T) {
	out := normalize.Synthesize(enrolmentSchema())
	if len(out) != 3 {
		t.Fatalf("want 3 relations, got %v", out)
	}
	bySig := map[string][]string{}
	for _, s := range out {
		bySig[normalize.KeySig(s.PrimaryKey...)] = s.AttrNames()
	}
	if !relation.SameAttrSet(bySig[normalize.KeySig("Sid")], []string{"Sid", "Sname", "Age"}) {
		t.Errorf("Student': %v", bySig[normalize.KeySig("Sid")])
	}
	if !relation.SameAttrSet(bySig[normalize.KeySig("Code")], []string{"Code", "Title", "Credit"}) {
		t.Errorf("Course': %v", bySig[normalize.KeySig("Code")])
	}
	if !relation.SameAttrSet(bySig[normalize.KeySig("Sid", "Code")], []string{"Sid", "Code", "Grade"}) {
		t.Errorf("Enrol': %v", bySig[normalize.KeySig("Sid", "Code")])
	}
}

// TestSynthesizeProperties: every synthesized relation is in 3NF, inherits
// attribute types, and the union of the decomposition covers the source.
func TestSynthesizeProperties(t *testing.T) {
	sources := []*relation.Schema{
		enrolmentSchema(),
		tpch.DenormalizedSchema()[0],  // Ordering
		tpch.DenormalizedSchema()[1],  // Customer
		acmdl.DenormalizedSchema()[0], // PaperAuthor
		acmdl.DenormalizedSchema()[1], // EditorProceeding
	}
	for _, src := range sources {
		out := normalize.Synthesize(src)
		var union []string
		for _, s := range out {
			union = append(union, s.AttrNames()...)
			if !normalize.Is3NF(s) {
				t.Errorf("%s: synthesized %v not in 3NF", src.Name, s.AttrNames())
			}
			for _, a := range s.Attributes {
				if a.Type != src.AttrType(a.Name) {
					t.Errorf("%s: attribute %s lost its type", src.Name, a.Name)
				}
			}
			if len(s.PrimaryKey) == 0 {
				t.Errorf("%s: synthesized relation without key", src.Name)
			}
		}
		if !relation.SameAttrSet(union, src.AttrNames()) {
			t.Errorf("%s: decomposition loses attributes: %v vs %v", src.Name, union, src.AttrNames())
		}
		// Dependency-preservation smoke check: one relation contains a
		// candidate key of the source.
		keys := normalize.CandidateKeys(src)
		hasKey := false
		for _, s := range out {
			for _, k := range keys {
				if relation.SubsetAttrSet(k, s.AttrNames()) {
					hasKey = true
				}
			}
		}
		if !hasKey {
			t.Errorf("%s: no synthesized relation contains a candidate key", src.Name)
		}
	}
}

// TestBuildViewEnrolment checks Algorithm 1 end to end on Figure 8,
// including the Table 1 mappings.
func TestBuildViewEnrolment(t *testing.T) {
	db := university.NewEnrolment()
	v, err := normalize.BuildView(db, university.EnrolmentHints())
	if err != nil {
		t.Fatal(err)
	}
	if !v.Changed {
		t.Fatal("Figure 8 must be detected as unnormalized")
	}
	if len(v.Schemas) != 3 {
		t.Fatalf("view: %v", v.Schemas)
	}
	if v.Schema("Student") == nil || v.Schema("Course") == nil || v.Schema("Enrol") == nil {
		t.Fatalf("hinted names missing: %v", v.Schemas)
	}
	if v.Sources["student"] != "Enrolment" {
		t.Errorf("Sources: %v", v.Sources)
	}
	// Foreign keys are re-inferred: Enrol references Student and Course.
	enrol := v.Schema("Enrol")
	if len(enrol.ForeignKeys) != 2 {
		t.Errorf("Enrol FKs: %v", enrol.ForeignKeys)
	}
	toView := v.MappingToView()
	if len(toView) != 3 || !strings.Contains(toView[0], "Enrolment") {
		t.Errorf("MappingToView: %v", toView)
	}
	toBase := v.MappingToBase()
	if len(toBase) != 1 || !strings.Contains(toBase[0], "JOIN") {
		t.Errorf("MappingToBase: %v", toBase)
	}
}

func TestBuildViewIdentityForNormalized(t *testing.T) {
	db := university.New()
	v, err := normalize.BuildView(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.Changed {
		t.Error("Figure 1 is normalized; the view must be the identity")
	}
	if len(v.Schemas) != len(db.Schemas()) {
		t.Errorf("identity view should keep all relations: %d vs %d", len(v.Schemas), len(db.Schemas()))
	}
	if len(v.MappingToView()) != 0 {
		t.Errorf("identity view has no mappings: %v", v.MappingToView())
	}
}

// TestBuildViewTPCH checks the TPCH' view: Part, Supplier, Order, Lineitem
// and Customer are synthesized; the two NationRegion fragments (from
// Ordering and Customer) merge; Nation and Region stay identity.
func TestBuildViewTPCH(t *testing.T) {
	db := tpch.Denormalize(tpch.New(tpch.Small()))
	v, err := normalize.BuildView(db, tpch.NameHints())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Part", "Supplier", "Order", "Lineitem", "Customer", "NationRegion", "Nation", "Region"} {
		if v.Schema(name) == nil {
			t.Errorf("view missing %s: %v", name, names(v))
		}
	}
	// Exactly one NationRegion despite two sources.
	n := 0
	for _, s := range v.Schemas {
		if strings.EqualFold(s.Name, "NationRegion") {
			n++
		}
	}
	if n != 1 {
		t.Errorf("NationRegion fragments not merged: %d", n)
	}
	// Lineitem is the ternary relationship: three FKs covering its key.
	li := v.Schema("Lineitem")
	if len(li.ForeignKeys) < 3 {
		t.Errorf("Lineitem FKs: %v", li.ForeignKeys)
	}
	if v.Sources["lineitem"] != "Ordering" {
		t.Errorf("Lineitem source: %v", v.Sources["lineitem"])
	}
	if v.Sources["nation"] != "Nation" {
		t.Errorf("Nation should be identity: %v", v.Sources["nation"])
	}
}

// TestBuildViewACMDL checks the ACMDL' view of Example-8 style synthesis on
// the two wide relations.
func TestBuildViewACMDL(t *testing.T) {
	db := acmdl.Denormalize(acmdl.New(acmdl.Small()))
	v, err := normalize.BuildView(db, acmdl.NameHints())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Paper", "Author", "Write", "Editor", "Proceeding", "Edit", "Publisher"} {
		if v.Schema(name) == nil {
			t.Errorf("view missing %s: %v", name, names(v))
		}
	}
	paper := v.Schema("Paper")
	fkTo := map[string]bool{}
	for _, fk := range paper.ForeignKeys {
		fkTo[fk.RefRelation] = true
	}
	if !fkTo["Proceeding"] {
		t.Errorf("Paper should reference Proceeding: %v", paper.ForeignKeys)
	}
	proc := v.Schema("Proceeding")
	fkTo = map[string]bool{}
	for _, fk := range proc.ForeignKeys {
		fkTo[fk.RefRelation] = true
	}
	if !fkTo["Publisher"] {
		t.Errorf("Proceeding should reference Publisher: %v", proc.ForeignKeys)
	}
}

func names(v *normalize.View) []string {
	out := make([]string, len(v.Schemas))
	for i, s := range v.Schemas {
		out[i] = s.Name
	}
	return out
}

func TestKeySig(t *testing.T) {
	if normalize.KeySig("Sid", "Code") != "code,sid" {
		t.Errorf("KeySig: %q", normalize.KeySig("Sid", "Code"))
	}
	if normalize.KeySig("CODE", "sid") != normalize.KeySig("Sid", "Code") {
		t.Error("KeySig must be case-insensitive and order-free")
	}
}
