package normalize_test

import (
	"testing"

	"kwagg/internal/dataset/acmdl"
	"kwagg/internal/dataset/tpch"
	"kwagg/internal/normalize"
)

// BenchmarkBuildView measures Algorithm 1 end to end on the Table 7
// schemas: 3NF checks, minimal covers, synthesis, merging, FK inference.
func BenchmarkBuildView(b *testing.B) {
	tdb := tpch.Denormalize(tpch.New(tpch.Small()))
	adb := acmdl.Denormalize(acmdl.New(acmdl.Small()))
	b.Run("tpch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := normalize.BuildView(tdb, tpch.NameHints()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("acmdl", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := normalize.BuildView(adb, acmdl.NameHints()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCandidateKeys measures key discovery on the widest schema.
func BenchmarkCandidateKeys(b *testing.B) {
	ordering := tpch.DenormalizedSchema()[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if keys := normalize.CandidateKeys(ordering); len(keys) == 0 {
			b.Fatal("no keys")
		}
	}
}

// BenchmarkSynthesize measures 3NF synthesis of the Ordering relation.
func BenchmarkSynthesize(b *testing.B) {
	ordering := tpch.DenormalizedSchema()[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if out := normalize.Synthesize(ordering); len(out) == 0 {
			b.Fatal("no decomposition")
		}
	}
}
