package normalize_test

import (
	"fmt"
	"math/rand"
	"testing"

	"kwagg/internal/normalize"
	"kwagg/internal/relation"
)

// randomSchema builds a relation with random FDs over a small attribute
// pool, keyed by one of its candidate keys.
func randomSchema(r *rand.Rand) *relation.Schema {
	nAttrs := 3 + r.Intn(5)
	var cols []string
	for i := 0; i < nAttrs; i++ {
		cols = append(cols, fmt.Sprintf("A%d", i))
	}
	s := relation.NewSchema("R", cols...)
	nFDs := r.Intn(5)
	for i := 0; i < nFDs; i++ {
		lhs := []string{cols[r.Intn(nAttrs)]}
		if r.Intn(3) == 0 {
			lhs = append(lhs, cols[r.Intn(nAttrs)])
		}
		rhs := []string{cols[r.Intn(nAttrs)]}
		s.Dep(lhs, rhs...)
	}
	// Pick a real candidate key as the primary key so the schema is
	// well-formed.
	s.Key(cols...) // provisional superkey so CandidateKeys terminates
	keys := normalize.CandidateKeys(s)
	if len(keys) > 0 {
		s.PrimaryKey = keys[0]
	}
	return s
}

// TestSynthesizeFuzz checks the three contracts of 3NF synthesis on
// hundreds of random schemas: every output relation is in 3NF, the
// decomposition preserves all attributes, and some output contains a
// candidate key of the input (so the decomposition is join-recoverable).
func TestSynthesizeFuzz(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 300; trial++ {
		s := randomSchema(r)
		out := normalize.Synthesize(s)
		if len(out) == 0 {
			t.Fatalf("trial %d: empty decomposition of %s (FDs %v)", trial, s, s.FDs)
		}
		var union []string
		for _, ns := range out {
			union = append(union, ns.AttrNames()...)
			if !normalize.Is3NF(ns) {
				t.Fatalf("trial %d: %v not in 3NF (source %s, FDs %v)",
					trial, ns.AttrNames(), s, s.FDs)
			}
			if len(ns.PrimaryKey) == 0 {
				t.Fatalf("trial %d: keyless output relation", trial)
			}
			if !relation.SubsetAttrSet(ns.PrimaryKey, ns.AttrNames()) {
				t.Fatalf("trial %d: key outside relation", trial)
			}
		}
		if !relation.SameAttrSet(union, s.AttrNames()) {
			t.Fatalf("trial %d: attributes lost: %v vs %v (FDs %v)",
				trial, union, s.AttrNames(), s.FDs)
		}
		keys := normalize.CandidateKeys(s)
		hasKey := false
		for _, ns := range out {
			for _, k := range keys {
				if relation.SubsetAttrSet(k, ns.AttrNames()) {
					hasKey = true
				}
			}
		}
		if !hasKey {
			t.Fatalf("trial %d: no output holds a candidate key of %s (FDs %v)", trial, s, s.FDs)
		}
	}
}

// TestCandidateKeysFuzz: every reported key is a minimal superkey.
func TestCandidateKeysFuzz(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	for trial := 0; trial < 300; trial++ {
		s := randomSchema(r)
		keys := normalize.CandidateKeys(s)
		if len(keys) == 0 {
			t.Fatalf("trial %d: no candidate keys for %s", trial, s)
		}
		fds := s.EffectiveFDs()
		for _, k := range keys {
			if !relation.Determines(k, s.AttrNames(), fds) {
				t.Fatalf("trial %d: %v is not a superkey of %s (FDs %v)", trial, k, s, s.FDs)
			}
			for drop := range k {
				reduced := append(append([]string(nil), k[:drop]...), k[drop+1:]...)
				if len(reduced) > 0 && relation.Determines(reduced, s.AttrNames(), fds) {
					t.Fatalf("trial %d: key %v not minimal (drop %s) for FDs %v", trial, k, k[drop], s.FDs)
				}
			}
		}
	}
}
