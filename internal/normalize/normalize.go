// Package normalize implements the unnormalized-database machinery of
// Section 4: functional-dependency reasoning (closures, candidate keys,
// normal-form tests), Bernstein-style 3NF synthesis, and Algorithm 1, which
// derives a normalized view D' of an unnormalized schema D together with the
// bidirectional mappings between them (Table 1). The ORM schema graph of an
// unnormalized database is built over D', while the generated SQL executes
// over D.
package normalize

import (
	"fmt"
	"sort"
	"strings"

	"kwagg/internal/relation"
)

// CandidateKeys returns all candidate keys of the schema under its effective
// FDs, each sorted, in deterministic order. The search is exponential in
// principle and capped for safety; schemas in this domain have few
// attributes.
func CandidateKeys(s *relation.Schema) [][]string {
	attrs := s.AttrNames()
	fds := s.EffectiveFDs()

	// Attributes appearing in no RHS must be part of every key.
	inRHS := make(map[string]bool)
	for _, fd := range fds {
		for _, a := range fd.RHS {
			inRHS[strings.ToLower(a)] = true
		}
	}
	var core, rest []string
	for _, a := range attrs {
		if inRHS[strings.ToLower(a)] {
			rest = append(rest, a)
		} else {
			core = append(core, a)
		}
	}
	if relation.Determines(core, attrs, fds) {
		return [][]string{relation.NormalizeAttrSet(core)}
	}

	// Breadth-first over supersets of the core, smallest first, keeping only
	// minimal superkeys.
	var keys [][]string
	isMinimal := func(cand []string) bool {
		for _, k := range keys {
			if relation.SubsetAttrSet(k, cand) {
				return false
			}
		}
		return true
	}
	const cap = 1 << 16
	steps := 0
	var frontier [][]string
	frontier = append(frontier, core)
	seen := map[string]bool{sig(core): true}
	for len(frontier) > 0 && steps < cap {
		var next [][]string
		for _, cand := range frontier {
			steps++
			if relation.Determines(cand, attrs, fds) {
				if isMinimal(cand) {
					keys = append(keys, relation.NormalizeAttrSet(cand))
				}
				continue
			}
			for _, a := range rest {
				if containsFold(cand, a) {
					continue
				}
				grown := append(append([]string(nil), cand...), a)
				grown = relation.NormalizeAttrSet(grown)
				if seen[sig(grown)] {
					continue
				}
				seen[sig(grown)] = true
				next = append(next, grown)
			}
		}
		frontier = next
		if len(keys) > 0 && len(frontier) > 0 && len(frontier[0]) > len(keys[0]) {
			break // all remaining candidates are larger than a found key
		}
	}
	sort.Slice(keys, func(i, j int) bool { return sig(keys[i]) < sig(keys[j]) })
	return keys
}

func sig(attrs []string) string {
	return strings.ToLower(strings.Join(relation.NormalizeAttrSet(attrs), ","))
}

// KeySig returns the key signature used by BuildView's name hints: the
// attribute names lower-cased, sorted, and joined with commas.
func KeySig(attrs ...string) string { return sig(attrs) }

func containsFold(set []string, a string) bool {
	for _, x := range set {
		if strings.EqualFold(x, a) {
			return true
		}
	}
	return false
}

// primeAttrs returns the set of attributes appearing in some candidate key.
func primeAttrs(keys [][]string) map[string]bool {
	out := make(map[string]bool)
	for _, k := range keys {
		for _, a := range k {
			out[strings.ToLower(a)] = true
		}
	}
	return out
}

// Is2NF reports whether the schema is in second normal form: no non-prime
// attribute depends on a proper subset of a candidate key.
func Is2NF(s *relation.Schema) bool {
	keys := CandidateKeys(s)
	prime := primeAttrs(keys)
	fds := s.EffectiveFDs()
	for _, fd := range minimalCover(fds) {
		for _, a := range fd.RHS {
			if prime[strings.ToLower(a)] {
				continue
			}
			for _, k := range keys {
				if relation.SubsetAttrSet(fd.LHS, k) && len(fd.LHS) < len(k) {
					return false
				}
			}
		}
	}
	return true
}

// Is3NF reports whether the schema is in third normal form: for every
// nontrivial FD X -> A, X is a superkey or A is prime.
func Is3NF(s *relation.Schema) bool {
	keys := CandidateKeys(s)
	prime := primeAttrs(keys)
	fds := s.EffectiveFDs()
	for _, fd := range fds {
		for _, a := range fd.RHS {
			if containsFold(fd.LHS, a) {
				continue // trivial
			}
			if prime[strings.ToLower(a)] {
				continue
			}
			if !relation.Determines(fd.LHS, s.AttrNames(), fds) {
				return false
			}
		}
	}
	return true
}

// minimalCover computes a minimal cover of the FDs: singleton right-hand
// sides, no extraneous left-hand attributes, no redundant dependencies.
func minimalCover(fds []relation.FD) []relation.FD {
	var work []relation.FD
	for _, fd := range fds {
		for _, r := range fd.RHS {
			if containsFold(fd.LHS, r) {
				continue
			}
			work = append(work, relation.FD{LHS: relation.NormalizeAttrSet(fd.LHS), RHS: []string{r}})
		}
	}
	// Remove extraneous LHS attributes.
	for i := range work {
		for changed := true; changed; {
			changed = false
			for _, b := range work[i].LHS {
				if len(work[i].LHS) == 1 {
					break
				}
				var reduced []string
				for _, x := range work[i].LHS {
					if !strings.EqualFold(x, b) {
						reduced = append(reduced, x)
					}
				}
				if relation.Determines(reduced, work[i].RHS, work) {
					work[i].LHS = reduced
					changed = true
					break
				}
			}
		}
	}
	// Remove redundant FDs.
	var out []relation.FD
	for i := range work {
		rest := make([]relation.FD, 0, len(work)-1)
		rest = append(rest, out...)
		rest = append(rest, work[i+1:]...)
		if relation.Determines(work[i].LHS, work[i].RHS, rest) {
			continue
		}
		out = append(out, work[i])
	}
	// Merge FDs with the same LHS.
	merged := make(map[string]*relation.FD)
	var order []string
	for _, fd := range out {
		k := sig(fd.LHS)
		if m, ok := merged[k]; ok {
			m.RHS = relation.NormalizeAttrSet(append(m.RHS, fd.RHS...))
			continue
		}
		cp := relation.FD{LHS: fd.LHS, RHS: fd.RHS}
		merged[k] = &cp
		order = append(order, k)
	}
	final := make([]relation.FD, 0, len(order))
	for _, k := range order {
		final = append(final, *merged[k])
	}
	return final
}

// Synthesize decomposes a non-3NF relation into a set of 3NF relations
// (Bernstein synthesis): one relation per minimal-cover LHS group, plus a
// candidate-key relation when no group contains one, with subsumed groups
// dropped. Each result's primary key is its group's LHS; attribute types are
// inherited from the source schema.
func Synthesize(s *relation.Schema) []*relation.Schema {
	cover := minimalCover(s.EffectiveFDs())
	type group struct {
		key   []string
		attrs []string
	}
	var groups []group
	for _, fd := range cover {
		found := false
		for i := range groups {
			if sig(groups[i].key) == sig(fd.LHS) {
				groups[i].attrs = relation.NormalizeAttrSet(append(groups[i].attrs, fd.RHS...))
				found = true
				break
			}
		}
		if !found {
			groups = append(groups, group{key: fd.LHS, attrs: relation.NormalizeAttrSet(append(append([]string(nil), fd.LHS...), fd.RHS...))})
		}
	}
	keys := CandidateKeys(s)
	hasKey := false
	for _, g := range groups {
		for _, k := range keys {
			if relation.SubsetAttrSet(k, g.attrs) {
				hasKey = true
				break
			}
		}
	}
	if !hasKey && len(keys) > 0 {
		groups = append(groups, group{key: keys[0], attrs: keys[0]})
	}
	// Drop groups subsumed by another group.
	var kept []group
	for i, g := range groups {
		subsumed := false
		for j, h := range groups {
			if i == j {
				continue
			}
			if relation.SubsetAttrSet(g.attrs, h.attrs) && (len(g.attrs) < len(h.attrs) || j < i) {
				subsumed = true
				break
			}
		}
		if !subsumed {
			kept = append(kept, g)
		}
	}
	var out []*relation.Schema
	for _, g := range kept {
		ns := &relation.Schema{Name: "", PrimaryKey: orderLike(s, g.key)}
		for _, a := range orderLike(s, g.attrs) {
			ns.Attributes = append(ns.Attributes, relation.Attribute{Name: canonicalName(s, a), Type: s.AttrType(a)})
		}
		ns.PrimaryKey = canonicalNames(s, ns.PrimaryKey)
		out = append(out, ns)
	}
	return out
}

// orderLike orders the attribute subset in the source schema's declaration
// order, keeping decompositions readable and deterministic.
func orderLike(s *relation.Schema, attrs []string) []string {
	var out []string
	for _, a := range s.Attributes {
		if containsFold(attrs, a.Name) {
			out = append(out, a.Name)
		}
	}
	return out
}

func canonicalName(s *relation.Schema, a string) string {
	if i := s.AttrIndex(a); i >= 0 {
		return s.Attributes[i].Name
	}
	return a
}

func canonicalNames(s *relation.Schema, attrs []string) []string {
	out := make([]string, len(attrs))
	for i, a := range attrs {
		out[i] = canonicalName(s, a)
	}
	return out
}

// View is the normalized view D' of an unnormalized database D: the 3NF
// schemas, the relation each one's tuples are projected from, and the
// mapping descriptions of Table 1.
type View struct {
	Schemas []*relation.Schema
	// Sources maps lower-cased view relation names to the D relation the
	// view relation is a projection of.
	Sources map[string]string
	// Changed reports whether any relation was actually decomposed; when
	// false, D was already normalized and the view is the identity.
	Changed bool
}

// Schema returns the named view schema, or nil.
func (v *View) Schema(name string) *relation.Schema {
	for _, s := range v.Schemas {
		if strings.EqualFold(s.Name, name) {
			return s
		}
	}
	return nil
}

// MappingToView renders the D -> D' mapping rows of Table 1(a).
func (v *View) MappingToView() []string {
	var out []string
	for _, s := range v.Schemas {
		src := v.Sources[strings.ToLower(s.Name)]
		if strings.EqualFold(src, s.Name) {
			continue
		}
		out = append(out, fmt.Sprintf("%s = Project[%s](%s)", s.Name, strings.Join(s.AttrNames(), ","), src))
	}
	return out
}

// MappingToBase renders the D' -> D mapping rows of Table 1(b): each
// unnormalized relation is the join of its projections.
func (v *View) MappingToBase() []string {
	bySrc := make(map[string][]string)
	var order []string
	for _, s := range v.Schemas {
		src := v.Sources[strings.ToLower(s.Name)]
		if strings.EqualFold(src, s.Name) {
			continue
		}
		if _, ok := bySrc[src]; !ok {
			order = append(order, src)
		}
		bySrc[src] = append(bySrc[src], s.Name)
	}
	var out []string
	for _, src := range order {
		out = append(out, fmt.Sprintf("%s = %s", src, strings.Join(bySrc[src], " JOIN ")))
	}
	return out
}

// BuildView implements Algorithm 1 (NormalizeDB): every 3NF relation of db
// joins the view unchanged; every other relation is synthesized into 3NF
// relations; same-key relations are merged when one subsumes the other.
// nameHints maps a key signature (lower-cased sorted attributes joined with
// commas, e.g. "paperid" or "paperid,authorid") to the name the synthesized
// relation should carry; unnamed relations get a deterministic fallback
// name. Foreign keys in the view are re-inferred by key containment.
func BuildView(db *relation.Database, nameHints map[string]string) (*View, error) {
	v := &View{Sources: make(map[string]string)}
	for _, t := range db.Tables() {
		s := t.Schema
		if Is3NF(s) {
			cp := s.Clone()
			v.Schemas = append(v.Schemas, cp)
			v.Sources[strings.ToLower(cp.Name)] = s.Name
			continue
		}
		v.Changed = true
		for _, ns := range Synthesize(s) {
			ns.Name = viewName(ns, s, nameHints)
			v.Schemas = append(v.Schemas, ns)
			v.Sources[strings.ToLower(ns.Name)] = s.Name
		}
	}
	v.merge()
	v.inferForeignKeys()
	return v, nil
}

// viewName picks a name for a synthesized relation.
func viewName(ns *relation.Schema, src *relation.Schema, hints map[string]string) string {
	if hints != nil {
		if n, ok := hints[sig(ns.PrimaryKey)]; ok {
			return n
		}
	}
	parts := make([]string, len(ns.PrimaryKey))
	for i, k := range ns.PrimaryKey {
		parts[i] = strings.Title(strings.TrimSuffix(strings.TrimSuffix(strings.ToLower(k), "key"), "id")) //nolint:staticcheck
	}
	name := strings.Join(parts, "")
	if name == "" {
		name = src.Name + "Part"
	}
	return name
}

// merge implements lines 9-11 of Algorithm 1 with a pragmatic restriction:
// two same-key relations merge when one's attributes subsume the other's or
// both project the same stored relation; same-key relations spanning
// different stored relations with disjoint extra attributes are kept apart
// (each remains a pure projection, which the translator requires).
func (v *View) merge() {
	for changed := true; changed; {
		changed = false
	outer:
		for i := 0; i < len(v.Schemas); i++ {
			for j := i + 1; j < len(v.Schemas); j++ {
				a, b := v.Schemas[i], v.Schemas[j]
				if sig(a.PrimaryKey) != sig(b.PrimaryKey) {
					continue
				}
				srcA := v.Sources[strings.ToLower(a.Name)]
				srcB := v.Sources[strings.ToLower(b.Name)]
				switch {
				case relation.SubsetAttrSet(b.AttrNames(), a.AttrNames()):
					v.drop(j)
				case relation.SubsetAttrSet(a.AttrNames(), b.AttrNames()):
					v.drop(i)
				case strings.EqualFold(srcA, srcB):
					for _, attr := range b.Attributes {
						if !a.HasAttr(attr.Name) {
							a.Attributes = append(a.Attributes, attr)
						}
					}
					v.drop(j)
				default:
					continue
				}
				changed = true
				break outer
			}
		}
	}
}

func (v *View) drop(i int) {
	name := strings.ToLower(v.Schemas[i].Name)
	delete(v.Sources, name)
	v.Schemas = append(v.Schemas[:i], v.Schemas[i+1:]...)
}

// inferForeignKeys rebuilds every view relation's foreign keys by key
// containment: A references B when B's key is a proper part of A's
// attributes (or both share a key, in which case the later-declared relation
// references the earlier). All datasets follow the same-name convention for
// join attributes.
func (v *View) inferForeignKeys() {
	for _, s := range v.Schemas {
		s.ForeignKeys = nil
	}
	for i, a := range v.Schemas {
		for j, b := range v.Schemas {
			if i == j {
				continue
			}
			if !relation.SubsetAttrSet(b.PrimaryKey, a.AttrNames()) {
				continue
			}
			if sig(a.PrimaryKey) == sig(b.PrimaryKey) {
				if i < j {
					continue // the later relation references the earlier
				}
			} else if relation.SubsetAttrSet(a.AttrNames(), b.AttrNames()) {
				continue // subsumed relations were merged already
			}
			key := canonicalNames(a, b.PrimaryKey)
			a.ForeignKeys = append(a.ForeignKeys, relation.ForeignKey{
				Attrs:       key,
				RefRelation: b.Name,
				RefAttrs:    append([]string(nil), b.PrimaryKey...),
			})
		}
	}
}
