// Package kwagg answers keyword queries involving aggregate functions and
// GROUPBY over relational databases, implementing the semantic approach of
// Zeng, Lee and Ling, "Answering Keyword Queries involving Aggregates and
// GROUPBY on Relational Databases" (EDBT 2016).
//
// A keyword query is a sequence of terms; each term matches a relation name,
// an attribute name, a tuple value, GROUPBY, or one of the aggregate
// functions MIN, MAX, AVG, SUM and COUNT:
//
//	eng, _ := kwagg.Open(db, nil)
//	answers, _ := eng.Answer(`COUNT Lecturer GROUPBY Course`, 1)
//
// The engine captures the database's Object-Relationship-Attribute (ORA)
// semantics in an ORM schema graph, interprets the query as ranked annotated
// query patterns, and translates the top-k patterns to SQL. The semantics
// let it distinguish objects sharing an attribute value (one aggregate per
// object), project away unused participants of n-ary relationships before
// joining (no duplicate counting), and — when relations violate 3NF — plan
// over a derived normalized view and rewrite the SQL back onto the stored
// relations.
//
// The package also exposes the SQAK baseline (Tata & Lohman, SIGMOD 2008)
// for side-by-side comparison, an in-memory SQL engine that executes the
// generated statements, and generators for the evaluation datasets.
package kwagg

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"kwagg/internal/backend"
	"kwagg/internal/chaos"
	"kwagg/internal/core"
	"kwagg/internal/keyword"
	"kwagg/internal/obs"
	"kwagg/internal/qcache"
	"kwagg/internal/relation"
	"kwagg/internal/sqak"
	"kwagg/internal/sqldb"
)

// Column declares one attribute of a table as "name TYPE"; TYPE is one of
// INT, FLOAT, DATE, or omitted for VARCHAR.
type Column = string

// FK declares a foreign key: Attrs in this table reference RefAttrs (the
// key) of RefTable. RefAttrs defaults to Attrs when empty.
type FK struct {
	Attrs    []string
	RefTable string
	RefAttrs []string
}

// Dep declares a functional dependency From -> To. Dependencies beyond the
// primary key drive unnormalized-schema detection and 3NF view synthesis.
type Dep struct {
	From []string
	To   []string
}

// TableSpec declares one table of a database.
type TableSpec struct {
	Name         string
	Columns      []Column
	PrimaryKey   []string
	ForeignKeys  []FK
	Dependencies []Dep
}

// DB is a mutable in-memory relational database.
type DB struct {
	db *relation.Database
}

// NewDB creates an empty database.
func NewDB(name string) *DB { return &DB{db: relation.NewDatabase(name)} }

// wrapDB adopts an internal database (used by the dataset constructors).
func wrapDB(db *relation.Database) *DB { return &DB{db: db} }

// CreateTable adds a table to the database.
func (d *DB) CreateTable(spec TableSpec) error {
	if spec.Name == "" || len(spec.Columns) == 0 {
		return fmt.Errorf("kwagg: table needs a name and columns")
	}
	s := relation.NewSchema(spec.Name, spec.Columns...)
	s.Key(spec.PrimaryKey...)
	for _, fk := range spec.ForeignKeys {
		s.Ref(fk.Attrs, fk.RefTable, fk.RefAttrs...)
	}
	for _, dep := range spec.Dependencies {
		s.Dep(dep.From, dep.To...)
	}
	d.db.AddSchema(s)
	return nil
}

// MustCreateTable is CreateTable but panics on error.
func (d *DB) MustCreateTable(spec TableSpec) {
	if err := d.CreateTable(spec); err != nil {
		panic(err)
	}
}

// Insert appends a row of string fields, coerced to the declared column
// types (empty string becomes NULL for non-VARCHAR columns).
//
// Once the database has been passed to Open, it is frozen: Insert returns an
// error from then on, which is what lets an Engine serve concurrent queries
// over immutable data and caches without locking. Build the data first, then
// Open.
func (d *DB) Insert(table string, fields ...string) error {
	t := d.db.Table(table)
	if t == nil {
		return fmt.Errorf("kwagg: unknown table %q", table)
	}
	return t.InsertRow(fields...)
}

// MustInsert is Insert but panics on error.
func (d *DB) MustInsert(table string, fields ...string) {
	if err := d.Insert(table, fields...); err != nil {
		panic(err)
	}
}

// Stats returns a one-line row-count summary.
func (d *DB) Stats() string { return d.db.Stats() }

// Save writes the database to a directory: schema.json (relations, types,
// keys, foreign keys, functional dependencies) plus one CSV per relation.
func (d *DB) Save(dir string) error { return relation.SaveDir(d.db, dir) }

// Load reads a database previously written by Save (or assembled by hand in
// the same layout) and validates its catalog.
func Load(dir string) (*DB, error) {
	db, err := relation.LoadDir(dir)
	if err != nil {
		return nil, err
	}
	return &DB{db: db}, nil
}

// Options configures Open.
type Options struct {
	// ViewNames names the relations of the normalized view synthesized for
	// an unnormalized database. Keys are key signatures: the key attributes
	// lower-cased, sorted and comma-joined (e.g. "paperid" or
	// "authorid,paperid"). Unnamed relations get generated names.
	ViewNames map[string]string
	// CacheSize bounds the interpretation cache (entries, LRU); 0 means
	// qcache.DefaultCapacity, negative disables caching.
	CacheSize int
	// Workers bounds the pool executing the top-k statements of Answer;
	// 0 means min(GOMAXPROCS, 8).
	Workers int
	// Chaos installs a fault injector at every instrumented pipeline point
	// (statement execution, worker pool, query caches); nil — the default —
	// disables chaos entirely, leaving only a nil check on the hot path.
	// See internal/chaos and docs/ROBUSTNESS.md.
	Chaos chaos.Injector
	// MemoCells bounds the shared-subplan memo that statement execution runs
	// through (result cells = rows x columns summed over cached fragments,
	// LRU): join fragments shared by the top-k interpretations of a query —
	// and by later queries, since the data is frozen — are computed once.
	// 0 means the core default, negative disables memoization.
	MemoCells int64
	// VerifyPlans makes every translated statement pass the plan-invariant
	// verifier (internal/planck) before it is returned or executed:
	// Interpret and Answer fail on any finding. The test suites and the
	// dataset workload replays run with it on; see docs/STATIC_ANALYSIS.md.
	VerifyPlans bool
	// BatchKernels selects the statement executor's kernel generation:
	// 0 (the default) and positive run the vectorized columnar batch
	// kernels, negative pins the integer-at-a-time encoded path. The two
	// produce byte-identical answers (gated by the three-way differential
	// suites); the escape hatch exists for comparison and bisection.
	BatchKernels int
	// Shards is the shard-parallel worker target for a single statement's
	// batch kernels: 0 means min(GOMAXPROCS, 8), 1 or negative pins
	// single-shard execution. Answers are row- and byte-identical either
	// way; the knob trades per-statement latency against cross-statement
	// throughput of the Workers pool.
	Shards int
	// Backend routes statement execution to an external engine
	// (internal/backend): generated SQL is rendered for the backend's
	// dialect and executed there, under the same per-statement deadlines,
	// retry policy and partial-answer semantics as the embedded engine. nil
	// (the default) executes in-memory. The engine does not take ownership —
	// Close the backend after the engine is done with it.
	Backend backend.Backend
	// FullRefreeze pins CommitEpoch to the from-scratch O(total rows) epoch
	// rebuild instead of the incremental O(new rows) delta freeze. Both
	// produce byte-identical epochs (gated by the incremental-vs-full
	// differential suites); the escape hatch exists for comparison
	// benchmarks and bisection, mirroring the BatchKernels idiom.
	FullRefreeze bool
}

// Engine answers keyword queries over one database.
//
// An Engine is safe for concurrent use: Open freezes the database (Insert is
// rejected afterwards) and builds every index up front, so all query-time
// state is immutable. Interpretations are memoized in a bounded LRU cache
// keyed by the normalized query; concurrent identical queries collapse to
// one computation (singleflight), and Interpret, Answer, Explain and
// PatternDot all share the cached slice. Executed answers are memoized the
// same way per (query, k) — sound because the frozen data cannot change —
// so repeat queries skip execution entirely.
//
// An engine opened with OpenLive additionally accepts rows through Ingest
// and folds them into a new immutable data epoch on CommitEpoch. Each query
// snapshots one epoch's state atomically (system, baseline, epoch number),
// and both caches key on the epoch, so a swap mid-request can never mix
// epochs within one answer or serve a stale cached answer as the new epoch's.
type Engine struct {
	cur     atomic.Pointer[engineState]
	live    *core.Live    // nil for engines opened with Open (frozen forever)
	cache   *qcache.Cache // nil when caching is disabled; holds []core.Interpretation
	answers *qcache.Cache // nil when caching is disabled; holds []Answer per (query, k)
	metrics *obs.Registry // per-engine observability registry (never nil)
}

// engineState is the per-epoch immutable query state, swapped as one unit:
// queries that loaded it keep planning and executing against a single epoch
// even while a commit swaps in the next one.
type engineState struct {
	sys   *core.System
	sqak  *sqak.System
	epoch uint64
}

// state returns the current epoch's engine state, folding in a freshly
// committed epoch first (CAS; the loser of a race adopts the winner's state).
func (e *Engine) state() *engineState {
	st := e.cur.Load()
	if e.live == nil {
		return st
	}
	// One Snapshot yields both the epoch check and the system to fold in; a
	// second load could observe a different epoch than the first.
	sys, epoch := e.live.Snapshot()
	if epoch == st.epoch {
		return st
	}
	next := &engineState{sys: sys, sqak: sqak.New(sys.Data), epoch: epoch}
	if e.cur.CompareAndSwap(st, next) {
		return next
	}
	return e.cur.Load()
}

// coreOptions translates the public Options into core's.
func coreOptions(opts *Options) *core.Options {
	copts := &core.Options{}
	if opts != nil {
		copts.NameHints = opts.ViewNames
		copts.Workers = opts.Workers
		copts.Chaos = opts.Chaos
		copts.MemoCells = opts.MemoCells
		copts.VerifyPlans = opts.VerifyPlans
		copts.BatchKernels = opts.BatchKernels
		copts.Shards = opts.Shards
		copts.Backend = opts.Backend
		copts.FullRefreeze = opts.FullRefreeze
	}
	return copts
}

// Open prepares the database for keyword search: it checks every relation's
// normal form, builds the ORM schema graph (over the normalized view for
// unnormalized databases), and indexes the stored values. Open freezes the
// database; see DB.Insert.
func Open(d *DB, opts *Options) (*Engine, error) {
	sys, err := core.Open(d.db, coreOptions(opts))
	if err != nil {
		return nil, err
	}
	return newEngine(sys, nil, opts), nil
}

// OpenLive is Open for a database that keeps growing: the engine answers
// queries exactly like a frozen one, but additionally accepts rows through
// Ingest and, on CommitEpoch, freezes them into the next immutable data
// epoch and atomically swaps it in. In-flight queries finish on the epoch
// they started on; completed answers are always byte-identical to some
// single epoch.
func OpenLive(d *DB, opts *Options) (*Engine, error) {
	live, err := core.OpenLive(d.db, coreOptions(opts))
	if err != nil {
		return nil, err
	}
	return newEngine(live.System(), live, opts), nil
}

func newEngine(sys *core.System, live *core.Live, opts *Options) *Engine {
	e := &Engine{live: live, metrics: obs.NewRegistry()}
	e.cur.Store(&engineState{sys: sys, sqak: sqak.New(sys.Data)})
	cacheSize := 0
	if opts != nil {
		cacheSize = opts.CacheSize
	}
	if cacheSize >= 0 {
		e.cache = qcache.New(cacheSize)
		e.answers = qcache.New(cacheSize)
		if opts != nil && opts.Chaos != nil {
			e.cache.SetInjector(opts.Chaos)
			e.answers.SetInjector(opts.Chaos)
		}
		registerCacheMetrics(e.metrics, "interpretation", e.cache.Stats)
		registerCacheMetrics(e.metrics, "answer", e.answers.Stats)
	}
	e.metrics.GaugeFunc("kwagg_exec_workers", "Size of the pool executing top-k statements.",
		func() float64 { return float64(e.state().sys.ExecWorkers()) })
	e.metrics.GaugeFunc("kwagg_shard_workers", "Shard-parallel worker target per statement.",
		func() float64 { return float64(e.state().sys.ShardWorkers()) })
	if live != nil {
		e.metrics.GaugeFunc("kwagg_epoch_pending_rows", "Rows ingested but not yet committed to an epoch.",
			func() float64 { return float64(live.Pending()) })
	}
	return e
}

// ErrNotLive is returned by the live-ingest methods of an engine opened with
// Open: its database is frozen forever. Use OpenLive to accept rows.
var ErrNotLive = errors.New("kwagg: engine is not live (opened with Open; use OpenLive to ingest)")

// Live reports whether the engine accepts live ingest (opened with OpenLive).
func (e *Engine) Live() bool { return e.live != nil }

// Epoch returns the engine's current committed data epoch: 0 for a frozen
// engine or a live one before its first CommitEpoch.
func (e *Engine) Epoch() uint64 { return e.state().epoch }

// PendingRows reports the rows ingested but not yet committed (0 for a
// frozen engine).
func (e *Engine) PendingRows() int {
	if e.live == nil {
		return 0
	}
	return e.live.Pending()
}

// Status is the engine's serving status, read from one snapshot.
type Status struct {
	// Live reports whether the engine accepts Ingest/CommitEpoch.
	Live bool
	// Epoch is the committed data epoch (0 for a frozen engine or a live
	// one before its first CommitEpoch).
	Epoch uint64
	// Workers is the size of the execution worker pool.
	Workers int
	// PendingRows counts rows ingested but not yet committed.
	PendingRows int
	// EpochBuild is the wall time the most recent CommitEpoch spent
	// building (zero before the first commit or for a frozen engine).
	EpochBuild time.Duration
}

// Status reports the serving counters from a single engine snapshot, so the
// epoch and worker count cannot mix epochs the way separate Epoch/Workers
// calls could on a live engine mid-commit.
func (e *Engine) Status() Status {
	st := e.state()
	s := Status{
		Live:    e.live != nil,
		Epoch:   st.epoch,
		Workers: st.sys.ExecWorkers(),
	}
	if e.live != nil {
		s.PendingRows = e.live.Pending()
		s.EpochBuild = e.live.BuildDuration()
	}
	return s
}

// Ingest buffers rows (one string per column, in declaration order, coerced
// to the declared types like DB.Insert) for the named table. Buffered rows
// are invisible to queries until CommitEpoch; the batch is atomic — any bad
// row rejects the whole call. Returns the total pending row count.
func (e *Engine) Ingest(table string, rows [][]string) (int, error) {
	if e.live == nil {
		return 0, ErrNotLive
	}
	return e.live.Ingest(table, rows)
}

// CommitEpoch freezes the pending ingested rows into the next immutable data
// epoch and atomically swaps it in, returning the new epoch number (or the
// current one when nothing is pending). Queries already running finish on
// the epoch they started; new queries see the new epoch, with fresh cache
// entries (both caches key on the epoch).
func (e *Engine) CommitEpoch(ctx context.Context) (uint64, error) {
	if e.live == nil {
		return 0, ErrNotLive
	}
	epoch, err := e.live.Commit(e.withObs(ctx))
	if err != nil {
		return epoch, err
	}
	e.state() // fold the swap in eagerly instead of on the next query
	return epoch, nil
}

// EpochBuildDuration returns the wall time the most recent CommitEpoch spent
// building and opening its epoch (zero for a frozen engine or before the
// first commit). Served as epoch_build_ms by /api/stats.
func (e *Engine) EpochBuildDuration() time.Duration {
	if e.live == nil {
		return 0
	}
	return e.live.BuildDuration()
}

// Metrics returns the engine's observability registry: per-stage latency
// histograms (fed by the pipeline spans), query outcome counters, cache
// counters mirrored from qcache, and the worker-pool gauge. The server layer
// encodes it at GET /metrics and adds its own HTTP counters to it.
func (e *Engine) Metrics() *obs.Registry { return e.metrics }

// registerCacheMetrics mirrors a qcache's counters into the registry via the
// Stats export hook: cumulative counters (hits, misses, collapsed,
// evictions) become one labeled counter family, levels (size, capacity,
// inflight) become gauges. Values are read live at scrape time.
func registerCacheMetrics(reg *obs.Registry, cache string, stats func() qcache.Stats) {
	qcache.Stats{}.Each(func(name string, _ float64, cumulative bool) {
		read := func() float64 {
			var v float64
			stats().Each(func(n string, val float64, _ bool) {
				if n == name {
					v = val
				}
			})
			return v
		}
		if cumulative {
			reg.CounterFunc("kwagg_cache_events_total",
				"Cache lookups by cache and event (hits, misses, collapsed, evictions).",
				read, obs.L("cache", cache), obs.L("event", name))
		} else {
			reg.GaugeFunc("kwagg_cache_"+name, "Cache "+name+" by cache.",
				read, obs.L("cache", cache))
		}
	})
}

// withObs attaches the engine's metrics registry to the context (unless the
// caller already attached one), so pipeline spans observe into the per-stage
// histograms even when the caller only wants aggregate metrics, not a trace.
func (e *Engine) withObs(ctx context.Context) context.Context {
	if obs.RegistryFrom(ctx) == nil {
		ctx = obs.WithRegistry(ctx, e.metrics)
	}
	return ctx
}

// normalizeQuery canonicalizes a keyword query for cache keying: terms are
// re-tokenized so that spacing variations of the same query share one cache
// entry, while quoted phrases keep their exact text. Queries that fail to
// parse fall back to a whitespace-collapsed key (their error is computed,
// returned and never cached).
func normalizeQuery(query string) string {
	if q, err := keyword.Parse(query); err == nil {
		return q.String()
	}
	return strings.Join(strings.Fields(query), " ")
}

// isContextError reports whether err is a deadline or cancellation error.
func isContextError(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}

// cachedCompute wraps qcache.GetContext with the poisoned-collapse retry: a
// waiter that collapsed onto another request's in-flight computation can
// inherit that request's context error (its client hung up mid-compute) even
// though this request is perfectly healthy. When that happens — a context
// error we did not compute ourselves while our own context is fine — retry
// once, starting (or joining) a fresh flight, instead of failing a healthy
// request with someone else's cancellation.
func cachedCompute(ctx context.Context, c *qcache.Cache, key string, compute func() (any, error)) (v any, computed bool, err error) {
	for attempt := 0; ; attempt++ {
		computed = false
		v, err = c.GetContext(ctx, key, func() (any, error) {
			computed = true
			return compute()
		})
		if err != nil && !computed && attempt < 1 && isContextError(err) && ctx.Err() == nil {
			continue
		}
		return v, computed, err
	}
}

// epochKey suffixes a cache key with the state's epoch, so entries computed
// on one epoch's data are never served as another's. Old-epoch entries stop
// being referenced after a swap and age out of the LRU.
func epochKey(key string, st *engineState) string {
	return key + "\x00e=" + strconv.FormatUint(st.epoch, 10)
}

// interpretations returns the full ranked interpretation slice of the query
// on st's epoch, serving from the cache when possible. Callers must treat the
// slice as read-only (it is shared across goroutines); take sub-slices, don't
// modify. A trace on the context records whether the slice came from the
// cache.
func (e *Engine) interpretations(ctx context.Context, st *engineState, query string) ([]core.Interpretation, error) {
	ctx = e.withObs(ctx)
	if e.cache == nil {
		return st.sys.InterpretContext(ctx, query, 0)
	}
	v, computed, err := cachedCompute(ctx, e.cache, epochKey(normalizeQuery(query), st), func() (any, error) {
		ins, err := st.sys.InterpretContext(ctx, query, 0)
		if err != nil {
			return nil, err
		}
		return ins, nil
	})
	if computed {
		obs.TraceFrom(ctx).Annotate("interpretation_cache", "miss")
	} else {
		obs.TraceFrom(ctx).Annotate("interpretation_cache", "hit")
	}
	if err != nil {
		return nil, err
	}
	return v.([]core.Interpretation), nil
}

// CacheStats reports the interpretation cache counters (all zero when the
// cache is disabled).
func (e *Engine) CacheStats() qcache.Stats {
	if e.cache == nil {
		return qcache.Stats{}
	}
	return e.cache.Stats()
}

// AnswerCacheStats reports the executed-answer cache counters (all zero when
// the cache is disabled).
func (e *Engine) AnswerCacheStats() qcache.Stats {
	if e.answers == nil {
		return qcache.Stats{}
	}
	return e.answers.Stats()
}

// Unnormalized reports whether the engine plans over a derived normalized
// view because the stored schema violates 3NF.
func (e *Engine) Unnormalized() bool { return e.state().sys.Unnormalized() }

// SchemaGraph describes the ORM schema graph nodes, their types, and their
// adjacency (Figures 3 and 9 of the paper).
func (e *Engine) SchemaGraph() string { return e.state().sys.DescribeSchema() }

// Interpretation is one ranked reading of a keyword query.
type Interpretation struct {
	// Description paraphrases the interpretation.
	Description string
	// SQL is the generated statement (single-line; PrettySQL is formatted).
	SQL       string
	PrettySQL string
	// Pattern is the annotated query pattern in compact text form.
	Pattern string
}

// Result is an executed query result.
type Result struct {
	Columns []string
	Rows    [][]string
}

// Answer is one executed interpretation.
type Answer struct {
	Interpretation
	Result Result
}

// FailedStatement describes one top-k statement that did not complete, for
// the degradation detail of a partial AnswerSet.
type FailedStatement struct {
	// Index is the interpretation's rank position among the executed top-k.
	Index int `json:"index"`
	// Pattern and SQL identify the failed interpretation.
	Pattern string `json:"pattern"`
	SQL     string `json:"sql"`
	// Message is the final attempt's error text.
	Message string `json:"error"`

	err error
}

// Unwrap exposes the underlying error (errors.Is/As through FailedStatement).
func (f FailedStatement) Unwrap() error { return f.err }

// AnswerSet is the degradation-aware result of AnswerSetContext: the answers
// that completed (rank order preserved) plus, when some statements failed,
// the per-statement failure detail. A partial set is never cached, so the
// next identical query recomputes the failed statements.
type AnswerSet struct {
	Answers []Answer
	// Partial is true when some (but not all) of the top-k statements failed;
	// Failed then lists them. Completed answers in a partial set are exactly
	// the answers a fault-free run would produce for those interpretations.
	Partial bool
	Failed  []FailedStatement
	// Retries counts transient-fault retry attempts across all statements.
	Retries int
}

// Err summarizes the set for strict callers: nil when complete, otherwise
// the first failure — preferring a context error so a timed-out request
// keeps its deadline semantics.
func (s *AnswerSet) Err() error {
	if len(s.Failed) == 0 {
		return nil
	}
	for _, f := range s.Failed {
		if isContextError(f.err) {
			return fmt.Errorf("kwagg: statement %d failed: %w", f.Index, f.err)
		}
	}
	f := s.Failed[0]
	return fmt.Errorf("kwagg: statement %d failed: %w", f.Index, f.err)
}

// Interpret returns the top-k ranked interpretations of the query with their
// generated SQL (k <= 0 returns all). The full ranked slice is computed once
// per query and cached, so follow-up calls with any k (and Answer, Explain,
// PatternDot on the same query) are served from the cache.
func (e *Engine) Interpret(query string, k int) ([]Interpretation, error) {
	ins, err := e.interpretations(context.Background(), e.state(), query)
	if err != nil {
		return nil, err
	}
	if k > 0 && len(ins) > k {
		ins = ins[:k]
	}
	out := make([]Interpretation, len(ins))
	for i, in := range ins {
		out[i] = Interpretation{
			Description: in.Description,
			SQL:         in.SQL.String(),
			PrettySQL:   in.SQL.Pretty(),
			Pattern:     in.Pattern.String(),
		}
	}
	return out, nil
}

// Explain returns a structured, human-readable account of how the i-th
// ranked interpretation of the query was produced: term readings, pattern
// nodes, disambiguation and duplicate-elimination decisions, and the
// ranking signals.
func (e *Engine) Explain(query string, i int) (string, error) {
	st := e.state()
	ins, err := e.interpretations(context.Background(), st, query)
	if err != nil {
		return "", err
	}
	if i < 0 || i >= len(ins) {
		return "", fmt.Errorf("kwagg: interpretation %d out of range (have %d)", i, len(ins))
	}
	return st.sys.Explain(ins[i]).String(), nil
}

// PatternDot renders the i-th ranked interpretation's annotated query
// pattern in Graphviz DOT form (the paper's Figures 4-7 style).
func (e *Engine) PatternDot(query string, i int) (string, error) {
	ins, err := e.interpretations(context.Background(), e.state(), query)
	if err != nil {
		return "", err
	}
	if i < 0 || i >= len(ins) {
		return "", fmt.Errorf("kwagg: interpretation %d out of range (have %d)", i, len(ins))
	}
	return ins[i].Pattern.Dot(), nil
}

// SchemaDot renders the ORM schema graph in Graphviz DOT form (Figures 3
// and 9).
func (e *Engine) SchemaDot() string { return e.state().sys.Graph.Dot() }

// SchemaInfo describes the schema of one engine snapshot.
type SchemaInfo struct {
	// Unnormalized reports whether the engine plans over a derived
	// normalized view because the stored schema violates 3NF.
	Unnormalized bool
	// Text describes the ORM schema graph nodes and their adjacency.
	Text string
	// Dot is the Graphviz DOT rendering of the same graph.
	Dot string
}

// Schema returns the schema description from a single engine snapshot.
// Separate Unnormalized/SchemaGraph/SchemaDot calls each take their own
// snapshot and can mix epochs on a live engine mid-commit; the fields of one
// SchemaInfo always describe the same epoch.
func (e *Engine) Schema() SchemaInfo {
	st := e.state()
	return SchemaInfo{
		Unnormalized: st.sys.Unnormalized(),
		Text:         st.sys.DescribeSchema(),
		Dot:          st.sys.Graph.Dot(),
	}
}

// Answer interprets the query and executes the top-k generated statements.
// Interpretations come from the cache when available; the statements execute
// concurrently on a bounded worker pool, and the returned slice preserves
// rank order. The executed answers are themselves cached per (query, k) —
// the frozen data cannot change under the engine, so a repeat query is a
// cache hit that skips execution entirely. Treat the returned slice as
// read-only; it is shared with later callers of the same query.
func (e *Engine) Answer(query string, k int) ([]Answer, error) {
	return e.AnswerContext(context.Background(), query, k)
}

// AnswerContext is Answer honoring a context deadline or cancellation:
// statements that have not started executing when the context is done are
// abandoned and the context's error is returned (a statement already running
// finishes; execution is not interrupted mid-statement). Context errors are
// never cached.
//
// When the context carries an obs trace (obs.NewTrace), the per-stage spans
// and the cache hit/miss provenance of this query are recorded on it; stage
// durations always land in the engine's metrics registry either way.
func (e *Engine) AnswerContext(ctx context.Context, query string, k int) ([]Answer, error) {
	set, err := e.AnswerSetContext(ctx, query, k)
	if err != nil {
		return nil, err
	}
	if err := set.Err(); err != nil {
		return nil, err
	}
	return set.Answers, nil
}

// AnswerSetContext is AnswerContext with graceful degradation: when some of
// the top-k statements fail (an injected fault, a per-statement deadline)
// while others complete, it returns a partial AnswerSet instead of an error,
// so the serving layer can answer with what it has. The error path is
// reserved for total failures: interpretation errors, every statement
// failing, or the request context itself expiring (a dead request gets its
// context error even if some statements finished first). Partial sets are
// never cached; complete sets are cached per (query, k) like Answer.
func (e *Engine) AnswerSetContext(ctx context.Context, query string, k int) (*AnswerSet, error) {
	ctx = e.withObs(ctx)
	set, err := e.answerSetCached(ctx, query, k)
	outcome := "ok"
	switch {
	case isContextError(err):
		outcome = "canceled"
	case err != nil:
		outcome = "error"
	case set.Partial:
		outcome = "partial"
		e.metrics.Counter("kwagg_partial_answers_total",
			"Queries answered partially after statement failures.").Inc()
	}
	e.metrics.Counter("kwagg_queries_total",
		"Answered keyword queries by outcome.", obs.L("outcome", outcome)).Inc()
	return set, err
}

// partialResult carries a partial AnswerSet out of the answer cache as an
// error, so the singleflight shares it with collapsed waiters but the cache
// never stores it (errors are not cached); the next identical query retries
// the failed statements.
type partialResult struct{ set *AnswerSet }

func (p *partialResult) Error() string { return "kwagg: partial answer set" }

func (e *Engine) answerSetCached(ctx context.Context, query string, k int) (*AnswerSet, error) {
	st := e.state()
	if e.answers == nil {
		return e.answerSetUncached(ctx, st, query, k)
	}
	key := epochKey(normalizeQuery(query)+"\x00k="+strconv.Itoa(k), st)
	v, computed, err := cachedCompute(ctx, e.answers, key, func() (any, error) {
		set, err := e.answerSetUncached(ctx, st, query, k)
		if err != nil {
			return nil, err
		}
		if set.Partial {
			return nil, &partialResult{set: set}
		}
		return set, nil
	})
	if computed {
		obs.TraceFrom(ctx).Annotate("answer_cache", "miss")
	} else {
		obs.TraceFrom(ctx).Annotate("answer_cache", "hit")
	}
	var pr *partialResult
	switch {
	case err == nil:
		return v.(*AnswerSet), nil
	case errors.As(err, &pr):
		return pr.set, nil
	default:
		return nil, err
	}
}

// answerSetUncached interprets and executes on st's epoch: the whole answer
// — interpretations and every executed statement — comes from one epoch even
// when a commit swaps the engine mid-request.
func (e *Engine) answerSetUncached(ctx context.Context, st *engineState, query string, k int) (*AnswerSet, error) {
	ins, err := e.interpretations(ctx, st, query)
	if err != nil {
		return nil, err
	}
	if k > 0 && len(ins) > k {
		ins = ins[:k]
	}
	rep := st.sys.ExecuteAllReport(ctx, ins)
	if ctx.Err() != nil {
		// The request itself is dead: its client gets the timeout/cancel
		// semantics, not a partial answer it is no longer waiting for.
		return nil, ctx.Err()
	}
	if len(rep.Answers) == 0 {
		if err := rep.Err(); err != nil {
			return nil, err
		}
	}
	_, rspan := obs.Start(ctx, "render")
	defer rspan.End()
	set := &AnswerSet{Retries: rep.Retries, Partial: len(rep.Failed) > 0}
	set.Answers = make([]Answer, len(rep.Answers))
	for i, a := range rep.Answers {
		set.Answers[i] = Answer{
			Interpretation: Interpretation{
				Description: a.Description,
				SQL:         a.SQL.String(),
				PrettySQL:   a.SQL.Pretty(),
				Pattern:     a.Pattern.String(),
			},
			Result: convertResult(a.Result),
		}
	}
	for _, f := range rep.Failed {
		set.Failed = append(set.Failed, FailedStatement{
			Index:   f.Index,
			Pattern: f.Pattern,
			SQL:     f.SQL,
			Message: f.Err.Error(),
			err:     f.Err,
		})
	}
	return set, nil
}

// Workers reports the size of the pool Answer executes statements on.
func (e *Engine) Workers() int { return e.state().sys.ExecWorkers() }

// ShardWorkers reports the shard-parallel worker target of one statement's
// batch kernels.
func (e *Engine) ShardWorkers() int { return e.state().sys.ShardWorkers() }

// PlanFinding is one plan invariant violated by a generated statement, as
// reported by the plan verifier (internal/planck): Rule names the invariant
// (e.g. "distinct-projection"), Detail describes the offending fragment.
type PlanFinding struct {
	Rule   string `json:"rule"`
	Detail string `json:"detail"`
}

// PlanFindings interprets the query and runs the plan-invariant verifier
// over the top-k generated statements (k <= 0 checks all), returning every
// finding instead of failing on the first. A healthy engine returns an empty
// slice for every query; `kwlint -plans` replays the dataset workloads
// through this to gate CI.
func (e *Engine) PlanFindings(query string, k int) ([]PlanFinding, error) {
	fs, err := e.state().sys.CheckPlans(query, k)
	if err != nil {
		return nil, err
	}
	out := make([]PlanFinding, len(fs))
	for i, f := range fs {
		out[i] = PlanFinding{Rule: f.Rule, Detail: f.Detail}
	}
	return out, nil
}

// ExecuteSQL runs a SQL statement of the supported subset directly against
// the stored database.
func (e *Engine) ExecuteSQL(sql string) (Result, error) {
	res, err := sqldb.ExecSQL(e.state().sys.Data, sql)
	if err != nil {
		return Result{}, err
	}
	return convertResult(res), nil
}

// ExplainSQLPlan returns the engine's evaluation plan for a SQL statement:
// scan cardinalities, pushed-down filters, and the chosen join order.
func (e *Engine) ExplainSQLPlan(sql string) (string, error) {
	plan, err := sqldb.ExplainSQL(e.state().sys.Data, sql)
	if err != nil {
		return "", err
	}
	return plan.String(), nil
}

// SQAKTranslate generates the SQAK baseline's SQL for the query. The error
// reproduces SQAK's documented restrictions (no self joins, at most one
// aggregate expression).
func (e *Engine) SQAKTranslate(query string) (string, error) {
	sql, err := e.state().sqak.Translate(query)
	if err != nil {
		return "", err
	}
	return sql.String(), nil
}

// SQAKAnswer generates and executes the SQAK baseline's SQL.
func (e *Engine) SQAKAnswer(query string) (Result, string, error) {
	res, sql, err := e.state().sqak.Answer(query)
	if err != nil {
		return Result{}, "", err
	}
	return convertResult(res), sql.String(), nil
}

func convertResult(res *sqldb.Result) Result {
	out := Result{Columns: res.Columns}
	for _, row := range res.Rows {
		cells := make([]string, len(row))
		for j, v := range row {
			cells[j] = relation.Format(v)
		}
		out.Rows = append(out.Rows, cells)
	}
	return out
}

// String renders the result as an aligned table.
func (r Result) String() string {
	res := &sqldb.Result{Columns: r.Columns}
	for _, row := range r.Rows {
		tu := make(relation.Tuple, len(row))
		for j, c := range row {
			tu[j] = c
		}
		res.Rows = append(res.Rows, tu)
	}
	return res.String()
}
