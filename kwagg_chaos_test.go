package kwagg_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"kwagg"
	"kwagg/internal/chaos"
	"kwagg/internal/experiments"
)

// workloads lists, per bundled dataset, the keyword queries its experiments
// (or seed tests) replay. The chaos suite runs every workload twice — once
// fault-free, once under an injector — and demands that every answer the
// chaos run completes is byte-identical to the fault-free run's answer for
// the same statement: degraded, maybe; silently wrong, never.
func workloads() map[string][]string {
	w := map[string][]string{
		"university": {
			"Green SUM Credit",
			"Green George COUNT Code",
			"COUNT Student GROUPBY Course",
		},
	}
	for _, q := range experiments.QueriesTPCH() {
		w["tpch"] = append(w["tpch"], q.Keywords)
	}
	for _, q := range experiments.QueriesACMDL() {
		w["acmdl"] = append(w["acmdl"], q.Keywords)
	}
	return w
}

// baselineAnswers runs the workload fault-free and returns the canonical
// rendering of every statement's result, keyed by its SQL.
func baselineAnswers(t *testing.T, name string, queries []string, k int) map[string]string {
	t.Helper()
	eng, err := kwagg.OpenDatasetOpts(name, true, &kwagg.Options{VerifyPlans: true})
	if err != nil {
		t.Fatalf("OpenDataset(%q): %v", name, err)
	}
	base := make(map[string]string)
	for _, q := range queries {
		set, err := eng.AnswerSetContext(context.Background(), q, k)
		if err != nil {
			t.Fatalf("%s: fault-free Answer(%q): %v", name, q, err)
		}
		if set.Partial {
			t.Fatalf("%s: fault-free Answer(%q) reported partial", name, q)
		}
		for _, a := range set.Answers {
			base[a.SQL] = renderResult(a.Result)
		}
	}
	return base
}

func renderResult(r kwagg.Result) string {
	return fmt.Sprintf("%v|%v", r.Columns, r.Rows)
}

// TestChaosReplayNeverSilentlyWrong is the headline acceptance property:
// replaying every dataset workload under a 10% injector (transient faults,
// injected cancellations, artificial latency on every point), each query
// either fails loudly, degrades to a partial answer with per-statement error
// detail, or completes — and every completed statement's result is
// byte-identical to the fault-free run's.
func TestChaosReplayNeverSilentlyWrong(t *testing.T) {
	const k = 3
	for name, queries := range workloads() {
		t.Run(name, func(t *testing.T) {
			base := baselineAnswers(t, name, queries, k)
			inj := chaos.New(chaos.Config{
				Rate:    0.1,
				Seed:    7,
				Cancel:  0.25,
				Latency: 200 * time.Microsecond,
			})
			eng, err := kwagg.OpenDatasetOpts(name, true, &kwagg.Options{Chaos: inj, VerifyPlans: true})
			if err != nil {
				t.Fatalf("OpenDatasetOpts(%q): %v", name, err)
			}
			completed, degraded := 0, 0
			for round := 0; round < 3; round++ {
				for _, q := range queries {
					set, err := eng.AnswerSetContext(context.Background(), q, k)
					if err != nil {
						// Every statement failed: a loud, total degradation.
						degraded++
						continue
					}
					for _, a := range set.Answers {
						want, ok := base[a.SQL]
						if !ok {
							t.Fatalf("%q under chaos produced a statement the "+
								"fault-free run never ran:\n%s", q, a.SQL)
						}
						if got := renderResult(a.Result); got != want {
							t.Fatalf("%q: silently wrong answer under chaos\nSQL: %s\ngot:  %s\nwant: %s",
								q, a.SQL, got, want)
						}
						completed++
					}
					if set.Partial {
						degraded++
						if len(set.Failed) == 0 {
							t.Fatalf("%q: partial set with no failure detail", q)
						}
						for _, f := range set.Failed {
							if f.Message == "" || f.Pattern == "" || f.SQL == "" {
								t.Fatalf("%q: failure detail incomplete: %+v", q, f)
							}
						}
					} else if len(set.Failed) != 0 || set.Err() != nil {
						t.Fatalf("%q: complete set carries failures: %+v", q, set.Failed)
					}
				}
			}
			if completed == 0 {
				t.Fatal("chaos run completed no statements; the property was vacuous")
			}
			total := uint64(0)
			for _, n := range inj.Injected() {
				total += n
			}
			if total == 0 {
				t.Fatal("injector fired no faults; the chaos run was fault-free")
			}
			t.Logf("%s: %d statements completed identical, %d queries degraded, %d faults injected",
				name, completed, degraded, total)
		})
	}
}

// TestChaosCachePointsStillCorrect drives the cache injection points at rate
// 1 — every lookup forced to miss, every insert dropped — and demands fully
// correct, complete answers throughout: cache chaos may only cost time.
func TestChaosCachePointsStillCorrect(t *testing.T) {
	queries := workloads()["university"]
	base := baselineAnswers(t, "university", queries, 2)
	inj := chaos.New(chaos.Config{
		Rate:   1,
		Seed:   3,
		Points: []chaos.Point{chaos.PointCacheLookup, chaos.PointCacheStore},
	})
	eng, err := kwagg.OpenDatasetOpts("university", true, &kwagg.Options{Chaos: inj, VerifyPlans: true})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		for _, q := range queries {
			set, err := eng.AnswerSetContext(context.Background(), q, 2)
			if err != nil {
				t.Fatalf("Answer(%q): %v", q, err)
			}
			if set.Partial {
				t.Fatalf("Answer(%q): cache faults must never degrade the answer", q)
			}
			for _, a := range set.Answers {
				if got := renderResult(a.Result); got != base[a.SQL] {
					t.Fatalf("%q: wrong answer under cache chaos\nSQL: %s", q, a.SQL)
				}
			}
		}
	}
	cs, as := eng.CacheStats(), eng.AnswerCacheStats()
	if cs.ForcedMisses == 0 && as.ForcedMisses == 0 {
		t.Fatalf("no forced misses recorded: interp=%+v answer=%+v", cs, as)
	}
	if cs.DroppedInserts == 0 && as.DroppedInserts == 0 {
		t.Fatalf("no dropped inserts recorded: interp=%+v answer=%+v", cs, as)
	}
	if cs.Hits+as.Hits != 0 {
		t.Fatalf("rate-1 cache-lookup faults must force every lookup to miss: interp=%+v answer=%+v", cs, as)
	}
}

// targetInjector is a deterministic chaos.Injector for semantics tests: it
// injects transient faults for the first transientLeft statement attempts,
// and a permanent fault for every statement whose SQL equals failSQL.
type targetInjector struct {
	mu            sync.Mutex
	transientLeft int
	failSQL       string
	statements    int
}

func (ti *targetInjector) Fault(p chaos.Point, detail string) error {
	if p != chaos.PointStatement {
		return nil
	}
	ti.mu.Lock()
	defer ti.mu.Unlock()
	ti.statements++
	if ti.transientLeft > 0 {
		ti.transientLeft--
		return &chaos.Transient{Point: p, Detail: detail}
	}
	if ti.failSQL != "" && detail == ti.failSQL {
		return errors.New("chaos test: permanent statement fault")
	}
	return nil
}

func (ti *targetInjector) Delay(chaos.Point) time.Duration { return 0 }

// TestChaosTransientFaultsAreRetried pins the retry semantics: a statement
// that fails transiently up to MaxRetries times still completes, the retries
// are accounted in the AnswerSet, and the answer is not partial.
func TestChaosTransientFaultsAreRetried(t *testing.T) {
	ti := &targetInjector{transientLeft: 2} // == core.DefaultMaxRetries
	eng, err := kwagg.OpenDatasetOpts("university", true, &kwagg.Options{Chaos: ti, VerifyPlans: true})
	if err != nil {
		t.Fatal(err)
	}
	set, err := eng.AnswerSetContext(context.Background(), "Green SUM Credit", 1)
	if err != nil {
		t.Fatalf("transient faults within the retry budget must not fail the query: %v", err)
	}
	if set.Partial || len(set.Answers) != 1 {
		t.Fatalf("want 1 complete answer, got %d (partial=%v)", len(set.Answers), set.Partial)
	}
	if set.Retries != 2 {
		t.Fatalf("AnswerSet.Retries = %d, want 2", set.Retries)
	}
}

// TestChaosTransientBudgetExhaustion: one more transient fault than the
// retry budget and the statement fails — loudly, as a partial or an error,
// with the transient fault in the detail.
func TestChaosTransientBudgetExhaustion(t *testing.T) {
	ti := &targetInjector{transientLeft: 3} // > DefaultMaxRetries
	eng, err := kwagg.OpenDatasetOpts("university", true, &kwagg.Options{Chaos: ti, VerifyPlans: true})
	if err != nil {
		t.Fatal(err)
	}
	set, err := eng.AnswerSetContext(context.Background(), "Green SUM Credit", 1)
	if err != nil {
		if !chaos.IsTransient(err) {
			t.Fatalf("exhausted retries should surface the transient fault, got %v", err)
		}
		return
	}
	if !set.Partial || len(set.Failed) == 0 {
		t.Fatalf("statement past its retry budget must degrade the set: %+v", set)
	}
}

// TestChaosPartialSetSemantics fails exactly one of two interpretations with
// a permanent (non-retryable) fault and checks the whole degradation
// contract: the other answer completes and is correct, the failed one is
// reported with its pattern and SQL at the right index, the strict
// AnswerContext rejects the partial set, and partial sets are never cached.
func TestChaosPartialSetSemantics(t *testing.T) {
	const query = "Green SUM Credit"
	clean, err := kwagg.OpenDatasetOpts("university", true, &kwagg.Options{VerifyPlans: true})
	if err != nil {
		t.Fatal(err)
	}
	ins, err := clean.Interpret(query, 2)
	if err != nil || len(ins) < 2 {
		t.Fatalf("need 2 interpretations of %q, got %d (%v)", query, len(ins), err)
	}
	target := ins[0].SQL
	ti := &targetInjector{failSQL: target}
	eng, err := kwagg.OpenDatasetOpts("university", true, &kwagg.Options{Chaos: ti, VerifyPlans: true})
	if err != nil {
		t.Fatal(err)
	}

	set, err := eng.AnswerSetContext(context.Background(), query, 2)
	if err != nil {
		t.Fatalf("one failed statement of two must degrade, not fail: %v", err)
	}
	if !set.Partial || len(set.Answers) != 1 || len(set.Failed) != 1 {
		t.Fatalf("want 1 answer + 1 failure, got %d + %d (partial=%v)",
			len(set.Answers), len(set.Failed), set.Partial)
	}
	f := set.Failed[0]
	if f.SQL != target || f.Index != 0 {
		t.Fatalf("failure detail names the wrong statement: %+v", f)
	}
	if f.Pattern != ins[0].Pattern {
		t.Fatalf("failure pattern = %q, want %q", f.Pattern, ins[0].Pattern)
	}
	if !strings.Contains(f.Message, "permanent statement fault") {
		t.Fatalf("failure message lost the cause: %q", f.Message)
	}
	if set.Err() == nil {
		t.Fatal("a partial set must expose a non-nil Err()")
	}
	if set.Answers[0].SQL != ins[1].SQL {
		t.Fatalf("the surviving answer is not the other interpretation:\n%s", set.Answers[0].SQL)
	}

	// The strict API refuses the degraded set outright.
	if _, err := eng.AnswerContext(context.Background(), query, 2); err == nil {
		t.Fatal("strict AnswerContext must reject a partial set")
	}

	// Partial sets are never cached: lift the fault and the same query must
	// recompute and come back complete.
	ti.mu.Lock()
	ti.failSQL = ""
	ti.mu.Unlock()
	set, err = eng.AnswerSetContext(context.Background(), query, 2)
	if err != nil || set.Partial || len(set.Answers) != 2 {
		t.Fatalf("after lifting the fault the set must be complete: %+v (%v)", set, err)
	}
}

// TestChaosCanceledFaultsNotRetried: injected cancellations are context
// errors, not transients — the executor must fail them without burning the
// retry budget.
func TestChaosCanceledFaultsNotRetried(t *testing.T) {
	inj := chaos.New(chaos.Config{Rate: 1, Cancel: 1, Seed: 5,
		Points: []chaos.Point{chaos.PointStatement}})
	eng, err := kwagg.OpenDatasetOpts("university", true, &kwagg.Options{Chaos: inj, VerifyPlans: true})
	if err != nil {
		t.Fatal(err)
	}
	set, err := eng.AnswerSetContext(context.Background(), "Green SUM Credit", 2)
	if err == nil {
		t.Fatalf("every statement canceled, yet the query succeeded: %+v", set)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want a context cancellation, got %v", err)
	}
	if set != nil {
		t.Fatalf("canceled query must not return a set, got %+v", set)
	}
}

// TestChaosDisabledIsIdentical: an engine with a nil injector and one with a
// zero-rate injector answer identically to each other — the injection points
// are inert when disabled.
func TestChaosDisabledIsIdentical(t *testing.T) {
	queries := workloads()["university"]
	base := baselineAnswers(t, "university", queries, 2)
	inj := chaos.New(chaos.Config{Rate: 0, Seed: 1})
	eng, err := kwagg.OpenDatasetOpts("university", true, &kwagg.Options{Chaos: inj, VerifyPlans: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		set, err := eng.AnswerSetContext(context.Background(), q, 2)
		if err != nil || set.Partial {
			t.Fatalf("zero-rate injector degraded %q: %v", q, err)
		}
		for _, a := range set.Answers {
			if renderResult(a.Result) != base[a.SQL] {
				t.Fatalf("zero-rate injector changed the answer to %q", q)
			}
		}
	}
	if n := inj.Injected(); len(n) != 0 {
		t.Fatalf("zero-rate injector fired: %v", n)
	}
}

// TestChaosReplayBatchVsEncoded crosses the kernel generations with fault
// injection: the fault-free baseline is computed with the batch kernels
// pinned OFF (Options.BatchKernels < 0, the integer-at-a-time path), then
// every workload is replayed under a 10% injector with the batch kernels ON.
// Every statement the chaos run completes must render byte-identical to the
// encoded fault-free answer — the vectorized kernels change neither results
// nor the partial-answer degradation contract, even when faults land mid-way
// through a block-at-a-time operator.
func TestChaosReplayBatchVsEncoded(t *testing.T) {
	const k = 3
	for name, queries := range kwagg.DatasetWorkloads() {
		name, queries := name, queries
		t.Run(name, func(t *testing.T) {
			// Encoded fault-free baseline.
			enc, err := kwagg.OpenDatasetOpts(name, true, &kwagg.Options{
				BatchKernels: -1, VerifyPlans: true})
			if err != nil {
				t.Fatalf("OpenDatasetOpts(%q): %v", name, err)
			}
			base := make(map[string]string)
			for _, q := range queries {
				set, err := enc.AnswerSetContext(context.Background(), q, k)
				if err != nil {
					t.Fatalf("%s: encoded fault-free Answer(%q): %v", name, q, err)
				}
				if set.Partial {
					t.Fatalf("%s: encoded fault-free Answer(%q) reported partial", name, q)
				}
				for _, a := range set.Answers {
					base[a.SQL] = renderResult(a.Result)
				}
			}

			// Batch kernels under chaos.
			inj := chaos.New(chaos.Config{
				Rate:    0.1,
				Seed:    13,
				Cancel:  0.25,
				Latency: 100 * time.Microsecond,
			})
			eng, err := kwagg.OpenDatasetOpts(name, true, &kwagg.Options{
				Chaos: inj, VerifyPlans: true})
			if err != nil {
				t.Fatal(err)
			}
			completed := 0
			for round := 0; round < 3; round++ {
				for _, q := range queries {
					set, err := eng.AnswerSetContext(context.Background(), q, k)
					if err != nil {
						continue // loud, total degradation — acceptable
					}
					for _, a := range set.Answers {
						want, ok := base[a.SQL]
						if !ok {
							t.Fatalf("%q under chaos produced a statement the "+
								"encoded run never ran:\n%s", q, a.SQL)
						}
						if got := renderResult(a.Result); got != want {
							t.Fatalf("%q: batch kernels under chaos diverged from the encoded baseline\nSQL: %s\ngot:  %s\nwant: %s",
								q, a.SQL, got, want)
						}
						completed++
					}
					// The degradation contract is kernel-independent: a partial
					// set still carries complete failure detail.
					if set.Partial && len(set.Failed) == 0 {
						t.Fatalf("%q: partial set with no failure detail", q)
					}
				}
			}
			if completed == 0 {
				t.Fatal("chaos run completed no statements; the property was vacuous")
			}
			t.Logf("%s: %d statements completed identical to the encoded baseline", name, completed)
		})
	}
}

// TestChaosConcurrentReplay hammers one chaos engine from many goroutines
// (exercising the singleflight collapse, cache injection and the worker pool
// under -race) and checks every completed answer against the baseline.
func TestChaosConcurrentReplay(t *testing.T) {
	queries := workloads()["university"]
	base := baselineAnswers(t, "university", queries, 2)
	inj := chaos.New(chaos.Config{Rate: 0.1, Seed: 11, Cancel: 0.25,
		Latency: 100 * time.Microsecond})
	eng, err := kwagg.OpenDatasetOpts("university", true, &kwagg.Options{Chaos: inj, VerifyPlans: true})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				q := queries[(g+i)%len(queries)]
				set, err := eng.AnswerSetContext(context.Background(), q, 2)
				if err != nil {
					continue // loud failure: acceptable degradation
				}
				for _, a := range set.Answers {
					if !reflect.DeepEqual(renderResult(a.Result), base[a.SQL]) {
						errc <- fmt.Errorf("goroutine %d: wrong answer to %q under chaos", g, q)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
