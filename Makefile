# Standard entry points; everything is pure Go with no external dependencies.

.PHONY: all build test test-race race cover cover-check test-prop test-chaos fuzz-smoke bench bench-json experiments verify fmt fmt-check vet lint lint-json ci examples

all: build test

build:
	go build ./...

test:
	go test ./...

# Tier-1 gate for the concurrency work: the whole suite under the race
# detector, including the 100+-goroutine stress tests.
test-race:
	go test -race ./...

race: test-race

cover:
	go test -cover ./...

# Coverage gate: total statement coverage must not fall below the baseline
# measured when the robustness suites landed. Raise the baseline when
# coverage genuinely improves; never lower it to make a PR pass.
COVER_BASELINE ?= 84.8

cover-check:
	@go test -coverprofile=cover.out ./... > /dev/null
	@total=$$(go tool cover -func=cover.out | awk '/^total:/ { sub("%","",$$3); print $$3 }'); \
	rm -f cover.out; \
	echo "total coverage: $$total% (baseline $(COVER_BASELINE)%)"; \
	awk -v t="$$total" -v b="$(COVER_BASELINE)" 'BEGIN { exit !(t+0 >= b+0) }' || \
		{ echo "coverage $$total% fell below the $(COVER_BASELINE)% baseline" >&2; exit 1; }

# Deep sweep of the property-based differential harness: many random
# database instances per property, engine answers checked against the
# brute-force oracle (see internal/proptest).
test-prop:
	go test -count=1 ./internal/proptest/ -proptest.deep

# Chaos suite under the race detector: fault-injection semantics per
# injection point, workload replays under a 10% injector, partial-answer
# HTTP contract, and the goroutine-leak checks.
test-chaos:
	go test -race -count=1 -run 'Chaos|Leak|Partial|Timeout|Cancel' . ./internal/chaos/ ./internal/core/ ./internal/server/ ./internal/qcache/

# Short fuzzing pass over every fuzz target (~5 minutes total); the nightly
# workflow runs this, and `go test ./...` always replays the committed seed
# corpora in testdata/fuzz/.
fuzz-smoke:
	go test -fuzz=FuzzParse -fuzztime=75s ./internal/keyword/
	go test -fuzz=FuzzParse -fuzztime=75s ./internal/sqldb/
	go test -fuzz=FuzzPretty -fuzztime=75s ./internal/sqldb/
	go test -fuzz=FuzzExec -fuzztime=75s ./internal/sqldb/

bench:
	go test -bench=. -benchmem ./...

# Machine-readable record of the executor-kernel and memo benchmarks
# (BENCH_PR6.json is the committed record for the batch-kernel PR, with
# per-kernel rows/s metrics; BENCH_PR4.json stays as the dictionary-encoding
# PR's record; the nightly workflow regenerates the current file as an
# artifact). -cpu 1,4 covers both the single-threaded kernels and the
# serving parallelism.
bench-json:
	go test -run '^$$' -bench 'Kernel|HashJoin3Way|GroupByAggregate|DistinctProjection|EqualityFilter|MemoSharedSubplans' \
		-benchmem -cpu 1,4 ./internal/sqldb/ | go run ./cmd/benchjson > BENCH_PR6.json
	@echo "wrote BENCH_PR6.json"

# Regenerate every table and figure of the paper's evaluation.
experiments:
	go run ./cmd/experiments -all

# CI gate: fails when any reproduced shape diverges from the paper.
verify:
	go run ./cmd/experiments -all -verify > /dev/null

fmt:
	gofmt -l -w .

# Fails (with the offending files listed) when anything is unformatted;
# mirrors the CI gofmt gate without rewriting the tree.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; fi

vet:
	go vet ./...

# Two-level static analysis (see docs/STATIC_ANALYSIS.md): the repo-specific
# code analyzers over every package, then the plan-invariant verifier over
# every statement the bundled dataset workloads generate.
lint:
	go run ./cmd/kwlint ./...
	go run ./cmd/kwlint -plans

# Machine-readable lint record; the nightly workflow uploads it as an
# artifact next to BENCH_PR4.json.
lint-json:
	go run ./cmd/kwlint -json ./... > KWLINT.json || true
	go run ./cmd/kwlint -json -plans > KWLINT_PLANS.json || true
	@echo "wrote KWLINT.json KWLINT_PLANS.json"

# Mirrors .github/workflows/ci.yml exactly, so contributors can run the
# whole push gate locally before opening a PR.
ci: build vet fmt-check lint test test-race test-chaos test-prop cover-check

# Run every example end to end.
examples:
	go run ./examples/quickstart
	go run ./examples/tpch
	go run ./examples/acmdl
	go run ./examples/unnormalized
	go run ./examples/relatedwork
