# Standard entry points; everything is pure Go with no external dependencies.

.PHONY: all build test test-shuffle test-race race cover cover-check test-prop test-chaos test-backend test-incremental fuzz-smoke bench bench-json bench-check experiments verify fmt fmt-check vet lint lint-json ci examples

all: build test

build:
	go build ./...

test:
	go test ./...

# Order-shuffled pass (mirrors the CI test matrix's second step): catches
# inter-test coupling that the fixed order hides.
test-shuffle:
	go test -shuffle=on -count=1 ./...

# Tier-1 gate for the concurrency work: the whole suite under the race
# detector, including the 100+-goroutine stress tests.
test-race:
	go test -race ./...

race: test-race

cover:
	go test -cover ./...

# Coverage gate: total statement coverage must not fall below the baseline
# measured when the robustness suites landed. Raise the baseline when
# coverage genuinely improves; never lower it to make a PR pass.
COVER_BASELINE ?= 84.8

cover-check:
	@go test -coverprofile=cover.out ./... > /dev/null
	@total=$$(go tool cover -func=cover.out | awk '/^total:/ { sub("%","",$$3); print $$3 }'); \
	rm -f cover.out; \
	echo "total coverage: $$total% (baseline $(COVER_BASELINE)%)"; \
	awk -v t="$$total" -v b="$(COVER_BASELINE)" 'BEGIN { exit !(t+0 >= b+0) }' || \
		{ echo "coverage $$total% fell below the $(COVER_BASELINE)% baseline" >&2; exit 1; }

# Deep sweep of the property-based differential harness: many random
# database instances per property, engine answers checked against the
# brute-force oracle (see internal/proptest).
test-prop:
	go test -count=1 ./internal/proptest/ -proptest.deep

# Chaos suite under the race detector: fault-injection semantics per
# injection point, workload replays under a 10% injector, partial-answer
# HTTP contract, and the goroutine-leak checks.
test-chaos:
	go test -race -count=1 -run 'Chaos|Leak|Partial|Timeout|Cancel' . ./internal/chaos/ ./internal/core/ ./internal/server/ ./internal/qcache/

# Backend seam under the race detector: the dialect renderer, the sqlite3
# CLI driver, the exporter and the SQLite differential oracle (every dataset
# workload interpretation on both engines). Skips the live halves cleanly
# when no sqlite3 binary is on PATH.
test-backend:
	go test -race -count=1 ./internal/backend/... ./internal/sqlast/render/

# Incremental-commit differential under the race detector: the relation
# delta-builder suite (ExtendFrozen vs full Freeze, index patching vs
# BuildIndex), the core Live incremental-vs-full-vs-direct equivalence, and
# the top-level replay of every dataset workload on an engine built via K
# incremental commits against one full core.Open — byte-identical answers
# required throughout, including under chaos injection mid-query.
test-incremental:
	go test -race -count=1 -run 'Incremental|ExtendFrozen|AppendRows|DictExtend|RemapCache|LiveCommit|LiveIngest|LiveEpoch' . ./internal/relation/ ./internal/core/

# Short fuzzing pass over every fuzz target (~6 minutes total); the nightly
# workflow runs this, and `go test ./...` always replays the committed seed
# corpora in testdata/fuzz/.
fuzz-smoke:
	go test -fuzz=FuzzParse -fuzztime=75s ./internal/keyword/
	go test -fuzz=FuzzParse -fuzztime=75s ./internal/sqldb/
	go test -fuzz=FuzzPretty -fuzztime=75s ./internal/sqldb/
	go test -fuzz=FuzzExec -fuzztime=75s ./internal/sqldb/
	go test -fuzz=FuzzRender -fuzztime=75s ./internal/backend/

bench:
	go test -bench=. -benchmem ./...

# Machine-readable record of the executor-kernel, memo and epoch-commit
# benchmarks (BENCH_PR9.json is the committed record for the incremental
# epoch-commit PR: the PR-7 kernel grid plus BenchmarkEpochCommit's N
# existing × M new rows matrix in both incremental and full-refreeze modes;
# BENCH_PR4.json, BENCH_PR6.json and BENCH_PR7.json stay as earlier PRs'
# records; the nightly workflow regenerates the current file as an
# artifact). -cpu 1,4 covers both the single-threaded kernels and the
# shard-parallel scaling; the epoch benches run -cpu 1 with a fixed 20x
# iteration count so the database grows identically run to run.
KERNEL_BENCHES = Kernel|HashJoin3Way|GroupByAggregate|DistinctProjection|EqualityFilter|MemoSharedSubplans
KERNEL_BENCH_RUN = go test -run '^$$' -bench '$(KERNEL_BENCHES)' -benchmem -cpu 1,4 ./internal/sqldb/
EPOCH_BENCH_RUN = go test -run '^$$' -bench 'EpochCommit' -benchmem -benchtime 20x -cpu 1 ./internal/core/

bench-json:
	{ $(KERNEL_BENCH_RUN); $(EPOCH_BENCH_RUN); } | go run ./cmd/benchjson > BENCH_PR9.json
	@echo "wrote BENCH_PR9.json"

# Bench-regression gate: rerun the kernel and epoch-commit benchmarks and
# fail when any rows/s-bearing benchmark falls more than 25% below the
# committed BENCH_PR9.json baseline (or disappears from the run). Because
# the baseline holds both modes of BenchmarkEpochCommit, this gate also
# pins the incremental-vs-full commit speedup: the incremental rows/s
# entries sit an order of magnitude above full's, so losing the delta path
# fails the comparison outright. The fresh run is written to
# BENCH_CURRENT.json for the CI artifact either way.
bench-check:
	{ $(KERNEL_BENCH_RUN); $(EPOCH_BENCH_RUN); } | go run ./cmd/benchjson -compare BENCH_PR9.json -tolerance 0.25 > BENCH_CURRENT.json
	@echo "wrote BENCH_CURRENT.json"

# Regenerate every table and figure of the paper's evaluation.
experiments:
	go run ./cmd/experiments -all

# CI gate: fails when any reproduced shape diverges from the paper.
verify:
	go run ./cmd/experiments -all -verify > /dev/null

fmt:
	gofmt -l -w .

# Fails (with the offending files listed) when anything is unformatted;
# mirrors the CI gofmt gate without rewriting the tree.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; fi

vet:
	go vet ./...

# Two-level static analysis (see docs/STATIC_ANALYSIS.md): the repo-specific
# code analyzers over every package — test files included, for the
# determinism analyzers — then the plan-invariant verifier over every
# statement the bundled dataset workloads generate.
lint:
	go run ./cmd/kwlint -tests ./...
	go run ./cmd/kwlint -plans

# Machine-readable lint record; the CI and nightly workflows upload it as an
# artifact next to BENCH_PR4.json.
lint-json:
	go run ./cmd/kwlint -json -tests ./... > KWLINT.json || true
	go run ./cmd/kwlint -json -plans > KWLINT_PLANS.json || true
	@echo "wrote KWLINT.json KWLINT_PLANS.json"

# Mirrors .github/workflows/ci.yml exactly, so contributors can run the
# whole push gate locally before opening a PR (the PR-only fuzz and
# bench-regression jobs are `go test -fuzz=FuzzExec -fuzztime=30s
# ./internal/sqldb/` and `make bench-check`).
ci: build vet fmt-check lint test test-shuffle test-race test-chaos test-prop test-backend test-incremental cover-check

# Run every example end to end.
examples:
	go run ./examples/quickstart
	go run ./examples/tpch
	go run ./examples/acmdl
	go run ./examples/unnormalized
	go run ./examples/relatedwork
