# Standard entry points; everything is pure Go with no external dependencies.

.PHONY: all build test test-race race cover bench experiments verify fmt fmt-check vet ci examples

all: build test

build:
	go build ./...

test:
	go test ./...

# Tier-1 gate for the concurrency work: the whole suite under the race
# detector, including the 100+-goroutine stress tests.
test-race:
	go test -race ./...

race: test-race

cover:
	go test -cover ./...

bench:
	go test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper's evaluation.
experiments:
	go run ./cmd/experiments -all

# CI gate: fails when any reproduced shape diverges from the paper.
verify:
	go run ./cmd/experiments -all -verify > /dev/null

fmt:
	gofmt -l -w .

# Fails (with the offending files listed) when anything is unformatted;
# mirrors the CI gofmt gate without rewriting the tree.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; fi

vet:
	go vet ./...

# Mirrors .github/workflows/ci.yml exactly, so contributors can run the
# whole push gate locally before opening a PR.
ci: build vet fmt-check test test-race

# Run every example end to end.
examples:
	go run ./examples/quickstart
	go run ./examples/tpch
	go run ./examples/acmdl
	go run ./examples/unnormalized
	go run ./examples/relatedwork
