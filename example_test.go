package kwagg_test

import (
	"fmt"
	"log"

	"kwagg"
)

// The running example of the paper: the total credits obtained by each
// student called Green (query Q1). SQAK-style systems merge both students
// into one total of 13; the semantic engine distinguishes them.
func Example() {
	eng, err := kwagg.Open(kwagg.UniversityDB(), nil)
	if err != nil {
		log.Fatal(err)
	}
	answers, err := eng.Answer("Green SUM Credit", 1)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range answers[0].Result.Rows {
		fmt.Println(row[0], row[1])
	}
	// Output:
	// s2 5
	// s3 8
}

// GROUPBY terms group aggregates by an object class: the number of
// lecturers per course (the paper's query Q5 / Example 6). The Teach
// relationship is projected on (Lid, Code) first, so a lecturer using two
// textbooks for one course counts once.
func ExampleEngine_Answer_groupBy() {
	eng, err := kwagg.Open(kwagg.UniversityDB(), nil)
	if err != nil {
		log.Fatal(err)
	}
	answers, err := eng.Answer("COUNT Lecturer GROUPBY Course", 1)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range answers[0].Result.Rows {
		fmt.Println(row[0], row[1])
	}
	// Output:
	// c1 2
	// c2 1
	// c3 1
}

// Nested aggregates apply one function to the result of another (the
// paper's Example 7): the average number of lecturers per course.
func ExampleEngine_Answer_nested() {
	eng, err := kwagg.Open(kwagg.UniversityDB(), nil)
	if err != nil {
		log.Fatal(err)
	}
	answers, err := eng.Answer("AVG COUNT Lecturer GROUPBY Course", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%.4s", answers[0].Result.Rows[0][0])
	// Output:
	// 1.33
}

// Unnormalized databases are planned over a synthesized 3NF view and the
// SQL is rewritten back onto the stored relation (the paper's Examples
// 8-10): the single wide Enrolment relation behaves exactly like the
// normalized database.
func ExampleOpen_unnormalized() {
	eng, err := kwagg.Open(kwagg.UniversityEnrolmentDB(),
		&kwagg.Options{ViewNames: kwagg.UniversityEnrolmentViewNames()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("unnormalized:", eng.Unnormalized())
	answers, err := eng.Answer("Green George COUNT Code", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(answers[0].SQL)
	// Output:
	// unnormalized: true
	// SELECT R2.Sid, COUNT(R1.Code) AS numCode FROM Enrolment R1, Enrolment R2 WHERE R1.Code=R2.Code AND R2.Sname CONTAINS 'Green' AND R1.Sname CONTAINS 'George' GROUP BY R2.Sid
}

// The SQAK baseline is available side by side for comparison; its answer
// for Q1 merges both Greens.
func ExampleEngine_SQAKAnswer() {
	eng, err := kwagg.Open(kwagg.UniversityDB(), nil)
	if err != nil {
		log.Fatal(err)
	}
	res, _, err := eng.SQAKAnswer("Green SUM Credit")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Rows[0][len(res.Rows[0])-1])
	// Output:
	// 13
}
