package kwagg_test

import (
	"context"
	"reflect"
	"testing"

	"kwagg"
)

// TestLiveEngineEpochs drives the public live-ingest surface end to end:
// epoch 0 answers like a frozen engine, ingested rows stay invisible until
// CommitEpoch, and after the swap both caches serve the new epoch's answers
// (the same query string must not replay a stale cached answer).
func TestLiveEngineEpochs(t *testing.T) {
	eng, err := kwagg.OpenLive(kwagg.UniversityDB(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !eng.Live() || eng.Epoch() != 0 || eng.PendingRows() != 0 {
		t.Fatalf("fresh live engine: live=%v epoch=%d pending=%d", eng.Live(), eng.Epoch(), eng.PendingRows())
	}
	const query = "Green SUM Credit"
	before, err := eng.Answer(query, 1)
	if err != nil {
		t.Fatal(err)
	}

	// A third Green student enrolled in Database changes the SUM.
	if _, err := eng.Ingest("Student", [][]string{{"s9", "Green", "23"}}); err != nil {
		t.Fatal(err)
	}
	if n, err := eng.Ingest("Enrol", [][]string{{"s9", "c2", "A"}}); err != nil || n != 2 {
		t.Fatalf("Ingest = %d, %v", n, err)
	}
	// Pending rows are invisible; the answer cache may legitimately serve
	// the epoch-0 entry because this still IS epoch 0.
	mid, err := eng.Answer(query, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, mid) {
		t.Fatalf("uncommitted rows changed the answer:\n%+v\n%+v", before, mid)
	}

	epoch, err := eng.CommitEpoch(context.Background())
	if err != nil || epoch != 1 {
		t.Fatalf("CommitEpoch = %d, %v", epoch, err)
	}
	if eng.Epoch() != 1 || eng.PendingRows() != 0 {
		t.Fatalf("after commit: epoch=%d pending=%d", eng.Epoch(), eng.PendingRows())
	}
	if eng.EpochBuildDuration() <= 0 {
		t.Fatalf("EpochBuildDuration after commit = %v, want > 0", eng.EpochBuildDuration())
	}
	after, err := eng.Answer(query, 1)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(before, after) {
		t.Fatalf("epoch swap served the stale cached answer:\n%+v", after)
	}
	// The epoch answer equals the same data opened frozen from scratch.
	db := kwagg.UniversityDB()
	db.MustInsert("Student", "s9", "Green", "23")
	db.MustInsert("Enrol", "s9", "c2", "A")
	frozen, err := kwagg.Open(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := frozen.Answer(query, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, after) {
		t.Fatalf("live epoch 1 diverged from the frozen equivalent:\nwant %+v\ngot  %+v", want, after)
	}
	// SQL and SQAK also see the new epoch.
	res, err := eng.ExecuteSQL("SELECT S.Sname FROM Student S WHERE S.Sid = 's9'")
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0] != "Green" {
		t.Fatalf("ExecuteSQL on epoch 1: %v %+v", err, res)
	}
}

// TestLiveEngineConcurrentSwap hammers the atomic epoch-state fold from many
// goroutines while commits land: every answer must be well-formed and the
// engine must end on the last epoch. Run under -race this also proves the
// query path never touches the mutable write buffer.
func TestLiveEngineConcurrentSwap(t *testing.T) {
	eng, err := kwagg.OpenLive(kwagg.UniversityDB(), nil)
	if err != nil {
		t.Fatal(err)
	}
	const epochs = 4
	done := make(chan struct{})
	errc := make(chan error, 8)
	for w := 0; w < 4; w++ {
		go func() {
			for {
				select {
				case <-done:
					return
				default:
				}
				if _, err := eng.Answer("Green SUM Credit", 2); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	for i := 0; i < epochs; i++ {
		sid := string(rune('A' + i))
		if _, err := eng.Ingest("Student", [][]string{{"sx" + sid, "Green", "25"}}); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.CommitEpoch(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	select {
	case err := <-errc:
		t.Fatalf("concurrent query failed across epoch swaps: %v", err)
	default:
	}
	if eng.Epoch() != epochs {
		t.Fatalf("final epoch = %d, want %d", eng.Epoch(), epochs)
	}
}

// TestFrozenEngineRejectsIngest pins the not-live error path of the ingest
// surface on an engine opened with plain Open.
func TestFrozenEngineRejectsIngest(t *testing.T) {
	eng := universityEngine(t)
	if eng.Live() {
		t.Fatal("Open produced a live engine")
	}
	if _, err := eng.Ingest("Student", [][]string{{"s9", "x", "20"}}); err != kwagg.ErrNotLive {
		t.Fatalf("Ingest on frozen engine: %v, want ErrNotLive", err)
	}
	if _, err := eng.CommitEpoch(context.Background()); err != kwagg.ErrNotLive {
		t.Fatalf("CommitEpoch on frozen engine: %v, want ErrNotLive", err)
	}
	if eng.Epoch() != 0 || eng.PendingRows() != 0 {
		t.Fatalf("frozen engine epoch=%d pending=%d", eng.Epoch(), eng.PendingRows())
	}
	if d := eng.EpochBuildDuration(); d != 0 {
		t.Fatalf("EpochBuildDuration on frozen engine = %v, want 0", d)
	}
}

// TestStatusAndSchemaSnapshots pins the single-snapshot aggregates: one
// Status/Schema call must agree with the per-field getters on a quiescent
// engine, across an epoch swap, and on a frozen engine.
func TestStatusAndSchemaSnapshots(t *testing.T) {
	eng, err := kwagg.OpenLive(kwagg.UniversityDB(), nil)
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Status()
	if !st.Live || st.Epoch != 0 || st.PendingRows != 0 || st.EpochBuild != 0 {
		t.Fatalf("fresh live Status = %+v", st)
	}
	if st.Workers != eng.Workers() {
		t.Fatalf("Status.Workers = %d, Workers() = %d", st.Workers, eng.Workers())
	}
	if _, err := eng.Ingest("Student", [][]string{{"s9", "Green", "23"}}); err != nil {
		t.Fatal(err)
	}
	if st = eng.Status(); st.PendingRows != 1 || st.Epoch != 0 {
		t.Fatalf("Status after ingest = %+v, want 1 pending row in epoch 0", st)
	}
	if _, err := eng.CommitEpoch(context.Background()); err != nil {
		t.Fatal(err)
	}
	st = eng.Status()
	if st.Epoch != 1 || st.PendingRows != 0 || st.EpochBuild <= 0 {
		t.Fatalf("Status after commit = %+v, want epoch 1, no pending, positive build time", st)
	}

	info := eng.Schema()
	if info.Unnormalized != eng.Unnormalized() || info.Text != eng.SchemaGraph() || info.Dot != eng.SchemaDot() {
		t.Fatal("Schema() disagrees with the per-field getters on a quiescent engine")
	}
	if info.Text == "" || info.Dot == "" {
		t.Fatalf("Schema() returned empty descriptions: %+v", info)
	}

	frozen := universityEngine(t)
	if st := frozen.Status(); st.Live || st.Epoch != 0 || st.PendingRows != 0 || st.EpochBuild != 0 {
		t.Fatalf("frozen Status = %+v", st)
	}
}
