package kwagg_test

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"kwagg"
	"kwagg/internal/chaos"
	"kwagg/internal/core"
	"kwagg/internal/dataset/acmdl"
	"kwagg/internal/dataset/tpch"
	"kwagg/internal/dataset/university"
	"kwagg/internal/leakcheck"
	"kwagg/internal/relation"
)

// incrementalCommits is how many consecutive Commit epochs the differential
// drives on top of the prefix; every dataset's rows are split into a prefix
// plus this many chunks.
const incrementalCommits = 3

// incrementalDataset builds the named bundled dataset directly at the small
// scale, returning the database and the view-name hints core.Open needs for
// the denormalized variants — the same switch datasetDB performs behind the
// public OpenDataset.
func incrementalDataset(t *testing.T, name string) (*relation.Database, map[string]string) {
	t.Helper()
	switch name {
	case "university":
		return university.New(), nil
	case "tpch":
		return tpch.New(tpch.Small()), nil
	case "tpch-denorm":
		return tpch.Denormalize(tpch.New(tpch.Small())), tpch.NameHints()
	case "acmdl":
		return acmdl.New(acmdl.Small()), nil
	case "acmdl-denorm":
		return acmdl.Denormalize(acmdl.New(acmdl.Small())), acmdl.NameHints()
	default:
		t.Fatalf("unknown dataset %q", name)
		return nil, nil
	}
}

// cutAt returns how many of n rows belong to the database state after k of
// incrementalCommits commits (k = 0 is the prefix): evenly spaced fractions
// ending at the full table, preserving row order throughout.
func cutAt(n, k int) int {
	return n * (k + 2) / (incrementalCommits + 2)
}

// prefixDatabase rebuilds db with only the first cutAt(·, k) rows of every
// table, in registration order — the ground truth the k-th incremental epoch
// must match byte for byte.
func prefixDatabase(t *testing.T, db *relation.Database, k int) *relation.Database {
	t.Helper()
	out := relation.NewDatabase(db.Name)
	for _, tb := range db.Tables() {
		nt := relation.NewTable(tb.Schema.Clone())
		if err := nt.AppendShared(tb.Tuples[:cutAt(len(tb.Tuples), k)]); err != nil {
			t.Fatal(err)
		}
		out.Add(nt)
	}
	return out
}

// systemAnswer renders the top-3 answers of query — SQL plus result rows —
// as one string, the unit of byte-identity (mirrors the core test helper).
// A deterministic failure (a query term absent from an early row prefix) is
// part of the observable behavior, so it renders as an error string and must
// match byte for byte too.
func systemAnswer(t *testing.T, s *core.System, query string) string {
	t.Helper()
	as, err := s.Answer(query, 3)
	if err != nil {
		return "error: " + err.Error() + "\n"
	}
	var b strings.Builder
	for _, a := range as {
		b.WriteString(a.SQL.String())
		b.WriteString("\n")
		b.WriteString(a.Result.String())
		b.WriteString("\n")
	}
	return b.String()
}

// ingestChunk feeds every table's k-th row chunk into the live engine at
// tuple fidelity (typed values and NULLs survive verbatim).
func ingestChunk(t *testing.T, live *core.Live, db *relation.Database, k int) {
	t.Helper()
	for _, tb := range db.Tables() {
		lo, hi := cutAt(len(tb.Tuples), k-1), cutAt(len(tb.Tuples), k)
		if lo == hi {
			continue
		}
		if _, err := live.IngestTuples(tb.Schema.Name, tb.Tuples[lo:hi]); err != nil {
			t.Fatalf("IngestTuples(%s): %v", tb.Schema.Name, err)
		}
	}
}

// TestIncrementalCommitMatchesFullOpen is the top-level differential of the
// incremental epoch builder: for every bundled dataset, an engine grown from
// a row prefix through incrementalCommits consecutive Commit epochs must
// answer every DatasetWorkloads query byte-identically to a from-scratch
// core.Open of the same rows — after every single commit, not just the last.
func TestIncrementalCommitMatchesFullOpen(t *testing.T) {
	for name, queries := range kwagg.DatasetWorkloads() {
		t.Run(name, func(t *testing.T) {
			db, hints := incrementalDataset(t, name)
			opts := &core.Options{NameHints: hints}
			live, err := core.OpenLive(prefixDatabase(t, db, 0), opts)
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			for k := 1; k <= incrementalCommits; k++ {
				ingestChunk(t, live, db, k)
				if ep, err := live.Commit(ctx); err != nil || ep != uint64(k) {
					t.Fatalf("Commit %d = %d, %v", k, ep, err)
				}
				truth, err := core.Open(prefixDatabase(t, db, k), opts)
				if err != nil {
					t.Fatal(err)
				}
				for _, q := range queries {
					want := systemAnswer(t, truth, q)
					if got := systemAnswer(t, live.System(), q); got != want {
						t.Fatalf("commit %d query %q: incremental epoch diverged from full open:\nwant:\n%s\ngot:\n%s",
							k, q, want, got)
					}
				}
			}
		})
	}
}

// TestIncrementalCommitChaosMidQuerySwap stretches queries across three
// consecutive incremental epoch swaps under injected faults and latency:
// every completed answer must be byte-identical to one of the four
// independently-built epoch baselines — never a torn mix — and the commit
// path must not leak goroutines.
func TestIncrementalCommitChaosMidQuerySwap(t *testing.T) {
	defer leakcheck.Check(t)()
	const query = "Green SUM Credit"
	db, _ := incrementalDataset(t, "university")

	baselines := make([]string, incrementalCommits+1)
	for k := 0; k <= incrementalCommits; k++ {
		truth, err := core.Open(prefixDatabase(t, db, k), nil)
		if err != nil {
			t.Fatal(err)
		}
		baselines[k] = systemAnswer(t, truth, query)
	}

	inj := chaos.New(chaos.Config{
		Rate:    0.3,
		Seed:    17,
		Latency: 2 * time.Millisecond,
		Points:  []chaos.Point{chaos.PointStatement, chaos.PointWorker},
	})
	live, err := core.OpenLive(prefixDatabase(t, db, 0), &core.Options{Chaos: inj})
	if err != nil {
		t.Fatal(err)
	}

	const queriers = 4
	answers := make([][]string, queriers)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < queriers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < 8; i++ {
				sys, _ := live.Snapshot()
				as, err := sys.Answer(query, 3)
				if err != nil {
					continue // injected faults may exhaust the retry budget
				}
				var b strings.Builder
				for _, a := range as {
					b.WriteString(a.SQL.String())
					b.WriteString("\n")
					b.WriteString(a.Result.String())
					b.WriteString("\n")
				}
				answers[w] = append(answers[w], b.String())
			}
		}(w)
	}
	close(start)
	ctx := context.Background()
	for k := 1; k <= incrementalCommits; k++ {
		ingestChunk(t, live, db, k)
		if ep, err := live.Commit(ctx); err != nil || ep != uint64(k) {
			t.Fatalf("Commit %d = %d, %v", k, ep, err)
		}
	}
	wg.Wait()

	completed := 0
	for w := range answers {
		for i, got := range answers[w] {
			completed++
			ok := false
			for _, want := range baselines {
				if got == want {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("querier %d answer %d matches no epoch baseline (torn epoch?):\n%s", w, i, got)
			}
		}
	}
	if completed == 0 {
		t.Fatal("no query completed; the chaos rate starved the test")
	}
	// The injector is still live at rate 0.3 here, so a single attempt can
	// exhaust the retry budget; faults are transient, so retry the final
	// read — only a non-error mismatch is a torn epoch.
	final := systemAnswer(t, live.System(), query)
	for attempt := 0; strings.HasPrefix(final, "error: ") && attempt < 8; attempt++ {
		final = systemAnswer(t, live.System(), query)
	}
	if final != baselines[incrementalCommits] {
		t.Fatalf("post-swap answer is not the final epoch's:\n%s", final)
	}
}
