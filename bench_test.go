// Benchmarks regenerating the paper's evaluation (Section 6), one benchmark
// per table/figure:
//
//   - BenchmarkFigure11aGenerationTPCH / BenchmarkFigure11bGenerationACMDL
//     time SQL generation only (pattern generation + translation for the
//     semantic approach, SQN construction for SQAK) — the quantity plotted
//     in Figure 11.
//   - BenchmarkTable5AnswerTPCH / BenchmarkTable6AnswerACMDL time the full
//     pipeline (interpretation + execution) on the normalized databases.
//   - BenchmarkTable8UnnormalizedTPCH / BenchmarkTable9UnnormalizedACMDL do
//     the same over the Table 7 denormalized variants, including the
//     normalized-view planning and Section 4.1 rewriting.
//   - BenchmarkAblation* quantify the design choices DESIGN.md calls out:
//     the Section 4.1 rewriting rules and the ORM-graph construction cost.
//
// Run: go test -bench=. -benchmem
package kwagg_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"kwagg"

	"kwagg/internal/core"
	"kwagg/internal/dataset/acmdl"
	"kwagg/internal/dataset/tpch"
	"kwagg/internal/experiments"
	"kwagg/internal/keyword"
	"kwagg/internal/orm"
	"kwagg/internal/relation"
	"kwagg/internal/sqldb"
)

var (
	setupOnce sync.Once
	tpchN     *experiments.Setup
	tpchU     *experiments.Setup
	acmdlN    *experiments.Setup
	acmdlU    *experiments.Setup
)

func setups(b *testing.B) (tn, tu, an, au *experiments.Setup) {
	b.Helper()
	setupOnce.Do(func() {
		var err error
		if tpchN, err = experiments.NewTPCH(tpch.Default()); err != nil {
			b.Fatal(err)
		}
		if tpchU, err = experiments.NewTPCHUnnormalized(tpch.Default()); err != nil {
			b.Fatal(err)
		}
		if acmdlN, err = experiments.NewACMDL(acmdl.Default()); err != nil {
			b.Fatal(err)
		}
		if acmdlU, err = experiments.NewACMDLUnnormalized(acmdl.Default()); err != nil {
			b.Fatal(err)
		}
	})
	return tpchN, tpchU, acmdlN, acmdlU
}

// benchGeneration times SQL generation (no execution) for each query of the
// workload, for both systems — the Figure 11 measurement.
func benchGeneration(b *testing.B, s *experiments.Setup, queries []experiments.Query) {
	for _, q := range queries {
		b.Run(q.ID+"/semantic", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.Ours.Interpret(q.Keywords, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(q.ID+"/sqak", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _ = s.SQAK.Translate(q.Keywords)
			}
		})
	}
}

// BenchmarkFigure11aGenerationTPCH regenerates Figure 11(a).
func BenchmarkFigure11aGenerationTPCH(b *testing.B) {
	tn, _, _, _ := setups(b)
	benchGeneration(b, tn, experiments.QueriesTPCH())
}

// BenchmarkFigure11bGenerationACMDL regenerates Figure 11(b).
func BenchmarkFigure11bGenerationACMDL(b *testing.B) {
	_, _, an, _ := setups(b)
	benchGeneration(b, an, experiments.QueriesACMDL())
}

// benchAnswers times interpretation plus execution of the selected
// interpretation for each query (the answers of Tables 5/6/8/9).
func benchAnswers(b *testing.B, s *experiments.Setup, queries []experiments.Query) {
	for _, q := range queries {
		b.Run(q.ID, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.Run(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable5AnswerTPCH regenerates the Table 5 answers.
func BenchmarkTable5AnswerTPCH(b *testing.B) {
	tn, _, _, _ := setups(b)
	benchAnswers(b, tn, experiments.QueriesTPCH())
}

// BenchmarkTable6AnswerACMDL regenerates the Table 6 answers.
func BenchmarkTable6AnswerACMDL(b *testing.B) {
	_, _, an, _ := setups(b)
	benchAnswers(b, an, experiments.QueriesACMDL())
}

// BenchmarkTable8UnnormalizedTPCH regenerates the Table 8 answers.
func BenchmarkTable8UnnormalizedTPCH(b *testing.B) {
	_, tu, _, _ := setups(b)
	benchAnswers(b, tu, experiments.QueriesTPCH())
}

// BenchmarkTable9UnnormalizedACMDL regenerates the Table 9 answers.
func BenchmarkTable9UnnormalizedACMDL(b *testing.B) {
	_, _, _, au := setups(b)
	benchAnswers(b, au, experiments.QueriesACMDL())
}

// BenchmarkAblationRewriteRules compares executing the Example 9 style
// statement with and without the Section 4.1 rewriting rules on the
// unnormalized TPCH' database, quantifying what Rule 1-3 buy.
func BenchmarkAblationRewriteRules(b *testing.B) {
	_, tu, _, _ := setups(b)
	sys := tu.Ours
	q := `COUNT supplier "Indian black chocolate"`

	ins, err := sys.Interpret(q, 1)
	if err != nil {
		b.Fatal(err)
	}
	rewritten := ins[0].SQL

	// Re-translate the same pattern with the rewriting rules disabled.
	raw := *sys.Translator
	raw.Rewrite = false
	patterns, err := sys.Generator.Generate(mustParse(b, q))
	if err != nil {
		b.Fatal(err)
	}
	unrewritten, err := raw.Translate(patterns[0])
	if err != nil {
		b.Fatal(err)
	}

	b.Run("rewritten", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sqldb.Exec(sys.Data, rewritten); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unrewritten", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sqldb.Exec(sys.Data, unrewritten); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationDedupProjection compares executing T6 with and without
// the Section 3.1.3 duplicate-elimination projection of Lineitem: the
// projection changes the answers (correctness) and also the join sizes.
func BenchmarkAblationDedupProjection(b *testing.B) {
	tn, _, _, _ := setups(b)
	sys := tn.Ours
	q := "COUNT part GROUPBY supplier"

	ins, err := sys.Interpret(q, 1)
	if err != nil {
		b.Fatal(err)
	}
	withRule := ins[0].SQL

	raw := *sys.Translator
	raw.DisableDedup = true
	patterns, err := sys.Generator.Generate(mustParse(b, q))
	if err != nil {
		b.Fatal(err)
	}
	withoutRule, err := raw.Translate(patterns[0])
	if err != nil {
		b.Fatal(err)
	}

	b.Run("with-projection", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sqldb.Exec(sys.Data, withRule); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("without-projection", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sqldb.Exec(sys.Data, withoutRule); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkOpen measures preparing a database for keyword search: normal
// form checking, ORM schema graph construction, and inverted-index build.
func BenchmarkOpen(b *testing.B) {
	dbs := map[string]func() *relation.Database{
		"tpch":         func() *relation.Database { return tpch.New(tpch.Default()) },
		"tpch-denorm":  func() *relation.Database { return tpch.Denormalize(tpch.New(tpch.Default())) },
		"acmdl":        func() *relation.Database { return acmdl.New(acmdl.Default()) },
		"acmdl-denorm": func() *relation.Database { return acmdl.Denormalize(acmdl.New(acmdl.Default())) },
	}
	for _, name := range []string{"tpch", "tpch-denorm", "acmdl", "acmdl-denorm"} {
		db := dbs[name]()
		hints := map[string]string{}
		switch name {
		case "tpch-denorm":
			hints = tpch.NameHints()
		case "acmdl-denorm":
			hints = acmdl.NameHints()
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Open(db, &core.Options{NameHints: hints}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScaleSweepGeneration extends Figure 11 with a dataset-size
// sweep: SQL-generation time for T3 (the value-match-heavy query) at the
// small and default scales. Generation depends on the matched-object
// counts, not the raw data volume, so times should grow sublinearly.
func BenchmarkScaleSweepGeneration(b *testing.B) {
	configs := map[string]tpch.Config{
		"small":   tpch.Small(),
		"default": tpch.Default(),
	}
	for _, name := range []string{"small", "default"} {
		s, err := experiments.NewTPCH(configs[name])
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.Ours.Interpret(`COUNT order "royal olive"`, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLargeScale runs the full pipeline (interpret + execute) for two
// representative queries on a ~50k-lineitem TPCH instance, demonstrating
// the engine stays interactive well beyond the experiment scale.
func BenchmarkLargeScale(b *testing.B) {
	db := tpch.New(tpch.Large())
	sys, err := core.Open(db, nil)
	if err != nil {
		b.Fatal(err)
	}
	for _, q := range []struct{ name, query string }{
		{"T3-royal-olive", `COUNT order "royal olive"`},
		{"T6-parts-per-supplier", "COUNT part GROUPBY supplier"},
	} {
		b.Run(q.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sys.Answer(q.query, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkORMGraphWalk measures the constrained walk search used to
// connect same-class pattern nodes (e.g. Student to Student via
// Enrol-Course-Enrol).
func BenchmarkORMGraphWalk(b *testing.B) {
	tn, _, _, _ := setups(b)
	g := tn.Ours.Graph
	b.Run("Part-Part", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if g.WalkPath("Part", "Part") == nil {
				b.Fatal("no walk")
			}
		}
	})
	b.Run("Region-Part", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if g.WalkPath("Region", "Part") == nil {
				b.Fatal("no walk")
			}
		}
	})
	_ = orm.Object // keep the orm import for documentation cross-reference
}

func mustParse(b *testing.B, q string) *keyword.Query {
	b.Helper()
	kq, err := keyword.Parse(q)
	if err != nil {
		b.Fatal(err)
	}
	return kq
}

// BenchmarkAnswerCached quantifies the interpretation cache: answering the
// same ACMDL query repeatedly through a caching engine against an engine
// with the cache disabled (Options.CacheSize < 0). The cached path should
// win by well over an order of magnitude since only execution remains.
func BenchmarkAnswerCached(b *testing.B) {
	const q = "COUNT paper GROUPBY proceeding SIGMOD"
	for _, cfg := range []struct {
		name      string
		cacheSize int
	}{
		{"cached", 0},
		{"uncached", -1},
	} {
		eng, err := kwagg.Open(kwagg.ACMDLDB(kwagg.ACMDLDefault), &kwagg.Options{CacheSize: cfg.cacheSize})
		if err != nil {
			b.Fatal(err)
		}
		// Warm once so the cached variant measures steady-state hits.
		if _, err := eng.Answer(q, 1); err != nil {
			b.Fatal(err)
		}
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Answer(q, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAnswerParallel8 measures executing every interpretation of an
// ACMDL query (k=0) with a single-worker pool against an 8-worker pool,
// driving core.ExecuteAll directly on pre-computed interpretations so the
// benchmark isolates the execution stage the pool parallelizes (through the
// Engine the answer cache would absorb the repeats).
func BenchmarkAnswerParallel8(b *testing.B) {
	_, _, an, _ := setups(b)
	sys := an.Ours
	ins, err := sys.Interpret("COUNT paper GROUPBY proceeding SIGMOD", 0)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for _, workers := range []int{1, 8} {
		sys.Workers = workers
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sys.ExecuteAll(ctx, ins); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	sys.Workers = 0
}
