package kwagg_test

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"kwagg"
)

func uniEngineOpts(t *testing.T, opts *kwagg.Options) *kwagg.Engine {
	t.Helper()
	eng, err := kwagg.Open(kwagg.UniversityDB(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestInsertAfterOpenRejected pins the thread-safety contract: Open freezes
// the database, so mutating it under a live engine is an error rather than a
// data race.
func TestInsertAfterOpenRejected(t *testing.T) {
	db := kwagg.UniversityDB()
	if _, err := kwagg.Open(db, nil); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("Student", "s99", "Newcomer", "20"); err == nil {
		t.Fatal("Insert after Open should be rejected")
	}
}

// TestAnswerAfterInterpretDifferentK verifies the cache stores the full
// interpretation slice: asking for a different k later slices the cached
// set instead of recomputing or returning the wrong count.
func TestAnswerAfterInterpretDifferentK(t *testing.T) {
	eng := uniEngineOpts(t, nil)
	q := "Green SUM Credit"

	all, err := eng.Interpret(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 2 {
		t.Fatalf("need ≥2 interpretations for this test, have %d", len(all))
	}

	one, err := eng.Interpret(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || one[0] != all[0] {
		t.Fatalf("Interpret k=1 after k=0: %d results, top mismatch", len(one))
	}

	ans, err := eng.Answer(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 2 {
		t.Fatalf("Answer k=2 after cached k=0: %d answers", len(ans))
	}
	for i := range ans {
		if ans[i].SQL != all[i].SQL {
			t.Errorf("answer %d executes %q, interpretation was %q", i, ans[i].SQL, all[i].SQL)
		}
	}
	if st := eng.CacheStats(); st.Misses != 1 {
		t.Errorf("different-k calls should share one computation: %+v", st)
	}
}

// TestInterpretationsComputedOncePerQuery is the regression test for the
// former Explain/PatternDot behavior of re-running the whole pipeline with
// Interpret(query, 0): across Interpret, Answer, Explain and PatternDot the
// interpretations must be computed exactly once.
func TestInterpretationsComputedOncePerQuery(t *testing.T) {
	eng := uniEngineOpts(t, nil)
	q := "Green SUM Credit"

	if _, err := eng.Interpret(q, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Answer(q, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Explain(q, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.PatternDot(q, 0); err != nil {
		t.Fatal(err)
	}
	st := eng.CacheStats()
	if st.Misses != 1 {
		t.Errorf("interpretations computed %d times across the API, want 1 (%+v)", st.Misses, st)
	}
	if st.Hits != 3 {
		t.Errorf("hits = %d, want 3 (%+v)", st.Hits, st)
	}

	// Whitespace variants share the cache entry (normalized keying).
	if _, err := eng.Interpret("  Green   SUM  Credit ", 1); err != nil {
		t.Fatal(err)
	}
	if st := eng.CacheStats(); st.Misses != 1 {
		t.Errorf("whitespace variant recomputed: %+v", st)
	}
}

// TestCacheEvictionAtCapacity exercises the LRU bound through the engine.
func TestCacheEvictionAtCapacity(t *testing.T) {
	eng := uniEngineOpts(t, &kwagg.Options{CacheSize: 2})
	queries := []string{"Green SUM Credit", "COUNT Student", "AVG Credit"}
	for _, q := range queries {
		if _, err := eng.Interpret(q, 1); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	st := eng.CacheStats()
	if st.Size != 2 || st.Evictions == 0 {
		t.Errorf("capacity 2 after 3 queries: %+v", st)
	}
	// The first (evicted) query recomputes; the engine still answers it.
	if _, err := eng.Answer(queries[0], 1); err != nil {
		t.Fatal(err)
	}
	if st := eng.CacheStats(); st.Misses != 4 {
		t.Errorf("evicted query should count a new miss: %+v", st)
	}
}

// TestCacheDisabled verifies CacheSize < 0 bypasses the cache entirely.
func TestCacheDisabled(t *testing.T) {
	eng := uniEngineOpts(t, &kwagg.Options{CacheSize: -1})
	for i := 0; i < 2; i++ {
		if _, err := eng.Interpret("COUNT Student", 1); err != nil {
			t.Fatal(err)
		}
	}
	if st := eng.CacheStats(); st.Misses != 0 && st.Hits != 0 {
		t.Errorf("disabled cache should not count: %+v", st)
	}
}

// TestSingleflightThroughEngine fires 100 goroutines at one cold query and
// asserts the interpretation pipeline ran exactly once.
func TestSingleflightThroughEngine(t *testing.T) {
	eng := uniEngineOpts(t, nil)
	const goroutines = 100
	q := "Green SUM Credit"

	want, err := eng.Interpret(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Reference answer taken; stampede a fresh engine so the query is cold.
	eng = uniEngineOpts(t, nil)

	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	results := make([][]kwagg.Interpretation, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g], errs[g] = eng.Interpret(q, 0)
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if !reflect.DeepEqual(results[g], want) {
			t.Fatalf("goroutine %d got different interpretations", g)
		}
	}
	st := eng.CacheStats()
	if st.Misses != 1 {
		t.Errorf("stampede computed %d times, want 1 (%+v)", st.Misses, st)
	}
	if st.Hits+st.Collapsed != goroutines-1 {
		t.Errorf("hits %d + collapsed %d != %d", st.Hits, st.Collapsed, goroutines-1)
	}
}

// TestConcurrentMixedQueriesMatchSerial is the engine-level stress gate: 100+
// goroutines of mixed identical/distinct queries must return exactly what
// the serial path returns. Run under -race this also proves the engine's
// immutability contract.
func TestConcurrentMixedQueriesMatchSerial(t *testing.T) {
	queries := []string{
		"Green SUM Credit",
		"COUNT Student",
		"AVG Credit",
		"COUNT Student GROUPBY Course",
		"MAX Credit",
	}

	// Serial baseline on its own engine.
	serial := uniEngineOpts(t, nil)
	want := make(map[string][]kwagg.Answer)
	for _, q := range queries {
		as, err := serial.Answer(q, 3)
		if err != nil {
			t.Fatalf("serial %s: %v", q, err)
		}
		want[q] = as
	}

	eng := uniEngineOpts(t, nil)
	const goroutines = 120
	const iters = 5
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				q := queries[(g+i)%len(queries)]
				got, err := eng.Answer(q, 3)
				if err != nil {
					t.Errorf("concurrent %s: %v", q, err)
					return
				}
				if !reflect.DeepEqual(got, want[q]) {
					t.Errorf("concurrent %s diverged from serial answer", q)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestAnswerContextCancelled verifies a cancelled context aborts execution.
func TestAnswerContextCancelled(t *testing.T) {
	eng := uniEngineOpts(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.AnswerContext(ctx, "Green SUM Credit", 1); err == nil {
		t.Fatal("cancelled context should fail")
	}
}

// TestAnswerRankOrderPreserved checks parallel execution returns answers in
// interpretation rank order, not completion order.
func TestAnswerRankOrderPreserved(t *testing.T) {
	eng := uniEngineOpts(t, &kwagg.Options{Workers: 4})
	q := "Green SUM Credit"
	ins, err := eng.Interpret(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		as, err := eng.Answer(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(as) != len(ins) {
			t.Fatalf("answers %d != interpretations %d", len(as), len(ins))
		}
		for i := range as {
			if as[i].SQL != ins[i].SQL {
				t.Fatalf("trial %d: answer %d is %q, rank says %q", trial, i, as[i].SQL, ins[i].SQL)
			}
		}
	}
}

// TestWorkersConfigurable pins pool sizing: explicit option wins, default is
// bounded.
func TestWorkersConfigurable(t *testing.T) {
	if w := uniEngineOpts(t, &kwagg.Options{Workers: 3}).Workers(); w != 3 {
		t.Errorf("workers = %d, want 3", w)
	}
	if w := uniEngineOpts(t, nil).Workers(); w < 1 || w > 8 {
		t.Errorf("default workers = %d, want 1..8", w)
	}
}

func ExampleEngine_cacheStats() {
	eng, _ := kwagg.Open(kwagg.UniversityDB(), nil)
	_, _ = eng.Interpret("COUNT Student", 1)
	_, _ = eng.Answer("COUNT Student", 1)
	st := eng.CacheStats()
	fmt.Println(st.Misses, st.Hits)
	// Output: 1 1
}

// TestAnswerCachePerK verifies executed answers are memoized per (query, k):
// a repeat Answer is a cache hit, a different k is a distinct entry, and both
// serve the same content as a cold engine.
func TestAnswerCachePerK(t *testing.T) {
	eng := uniEngineOpts(t, nil)
	q := "Green SUM Credit"

	first, err := eng.Answer(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	again, err := eng.Answer(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, again) {
		t.Fatal("repeat Answer diverged")
	}
	st := eng.AnswerCacheStats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("answer cache after repeat: %+v", st)
	}

	// A different k executes (and caches) separately.
	if _, err := eng.Answer(q, 2); err != nil {
		t.Fatal(err)
	}
	if st := eng.AnswerCacheStats(); st.Misses != 2 {
		t.Errorf("k=2 should be its own entry: %+v", st)
	}
	// ...but shares the one cached interpretation slice.
	if st := eng.CacheStats(); st.Misses != 1 {
		t.Errorf("interpretations recomputed: %+v", st)
	}

	cold := uniEngineOpts(t, nil)
	want, err := cold.Answer(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, want) {
		t.Error("cached answer diverged from cold engine")
	}
}
