module kwagg

go 1.22
