// Engine-level contract of Options.Backend: the public engine executes
// keyword queries on an external SQLite engine with identical answers,
// counts the backend's statements in the engine registry, and keeps the
// partial-answer-never-cached guarantee when the backend fails.
package kwagg_test

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"kwagg"
	"kwagg/internal/backend"
	"kwagg/internal/backend/sqlitecli"
	"kwagg/internal/dataset/university"
	"kwagg/internal/sqlast"
)

// universitySQLite exports the (deterministic) university dataset into a
// fresh SQLite file and returns its backend.
func universitySQLite(t *testing.T) *backend.SQLBackend {
	t.Helper()
	if !sqlitecli.Available() {
		t.Skip("sqlite3 binary not on PATH")
	}
	ext, err := backend.NewSQLite(university.New())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ext.Close() })
	return ext
}

func TestEngineBackendAnswersMatchEmbedded(t *testing.T) {
	ext := universitySQLite(t)
	onSQLite, err := kwagg.OpenDatasetOpts("university", true, &kwagg.Options{Backend: ext})
	if err != nil {
		t.Fatal(err)
	}
	embedded, err := kwagg.OpenDataset("university", true)
	if err != nil {
		t.Fatal(err)
	}
	for _, query := range kwagg.DatasetWorkloads()["university"] {
		a, err := onSQLite.Answer(query, 0)
		if err != nil {
			t.Fatalf("%s on sqlite: %v", query, err)
		}
		b, err := embedded.Answer(query, 0)
		if err != nil {
			t.Fatalf("%s embedded: %v", query, err)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: %d answers on sqlite, %d embedded", query, len(a), len(b))
		}
		for i := range a {
			if got, want := a[i].Result.String(), b[i].Result.String(); got != want {
				t.Errorf("%s interpretation %d diverged:\nsqlite:\n%s\nembedded:\n%s", query, i, got, want)
			}
		}
	}
}

func TestEngineBackendMetrics(t *testing.T) {
	ext := universitySQLite(t)
	eng, err := kwagg.OpenDatasetOpts("university", true, &kwagg.Options{Backend: ext})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Answer("COUNT Student GROUPBY Course", 0); err != nil {
		t.Fatal(err)
	}
	var statements, rows float64
	for _, m := range eng.Metrics().Snapshot() {
		switch m.Name {
		case "kwagg_backend_statements_total":
			if m.Labels["backend"] != "sqlite" {
				t.Errorf("statements counted for backend %q", m.Labels["backend"])
			}
			if m.Labels["outcome"] == "ok" {
				statements += m.Value
			}
		case "kwagg_backend_rows_total":
			rows += m.Value
		}
	}
	if statements == 0 {
		t.Error("kwagg_backend_statements_total{outcome=ok} not incremented")
	}
	if rows == 0 {
		t.Error("kwagg_backend_rows_total not incremented")
	}
}

// healableBackend fails every Exec with a permanent error while broken.
type healableBackend struct {
	inner  backend.Backend
	broken atomic.Bool
}

func (h *healableBackend) Name() string { return h.inner.Name() }
func (h *healableBackend) Close() error { return h.inner.Close() }
func (h *healableBackend) Exec(ctx context.Context, q *sqlast.Query) (backend.Rows, error) {
	if h.broken.Load() {
		return nil, errors.New("backend down")
	}
	return h.inner.Exec(ctx, q)
}

// TestEngineBackendPartialNotCached breaks the backend for the first
// request (every statement fails → the query errors; with >1 interpretation
// a partial set), then heals it: the repeat query must recompute and come
// back complete, proving no degraded result was cached.
func TestEngineBackendPartialNotCached(t *testing.T) {
	ext := universitySQLite(t)
	h := &healableBackend{inner: ext}
	eng, err := kwagg.OpenDatasetOpts("university", true, &kwagg.Options{Backend: h})
	if err != nil {
		t.Fatal(err)
	}
	const query = "Green SUM Credit"

	h.broken.Store(true)
	set, err := eng.AnswerSetContext(context.Background(), query, 2)
	if err == nil && !set.Partial {
		t.Fatalf("all statements failed yet the set is complete: %+v", set)
	}

	h.broken.Store(false)
	set, err = eng.AnswerSetContext(context.Background(), query, 2)
	if err != nil {
		t.Fatalf("after healing: %v", err)
	}
	if set.Partial || len(set.Answers) == 0 {
		t.Fatalf("degraded result was cached: %+v", set)
	}
	for _, f := range set.Failed {
		if strings.Contains(f.Message, "backend down") {
			t.Fatalf("healed run still reports the old fault: %+v", f)
		}
	}
}
