// Command unnormalized demonstrates keyword search over databases that
// violate third normal form (Section 4 of the paper).
//
// It opens the single-relation Enrolment database of Figure 8, shows the
// synthesized normalized view (Student', Enrol', Course' — Example 8 and
// Table 1), runs Example 9's query, and prints the rewritten SQL of Example
// 10, which joins the stored Enrolment relation with itself instead of five
// projection subqueries. It then repeats two TPCH queries on the wide
// Ordering relation of Table 7 and shows that the answers match the
// normalized database — while SQAK's answers drift once data is duplicated.
package main

import (
	"fmt"
	"log"

	"kwagg"
)

func main() {
	fmt.Println("### Figure 8: the unnormalized Enrolment database")
	eng, err := kwagg.Open(kwagg.UniversityEnrolmentDB(),
		&kwagg.Options{ViewNames: kwagg.UniversityEnrolmentViewNames()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("detected unnormalized:", eng.Unnormalized())
	fmt.Println("normalized view (Example 8):")
	fmt.Println(eng.SchemaGraph())

	answers, err := eng.Answer("Green George COUNT Code", 1)
	if err != nil {
		log.Fatal(err)
	}
	a := answers[0]
	fmt.Println("Example 9 query {Green George COUNT Code}, rewritten SQL (Example 10):")
	fmt.Println(a.PrettySQL)
	fmt.Println(a.Result)

	fmt.Println("### Table 7: the wide TPCH' Ordering relation")
	norm, err := kwagg.Open(kwagg.TPCHDB(kwagg.TPCHDefault), nil)
	if err != nil {
		log.Fatal(err)
	}
	denorm, err := kwagg.Open(kwagg.TPCHUnnormalizedDB(kwagg.TPCHDefault),
		&kwagg.Options{ViewNames: kwagg.TPCHViewNames()})
	if err != nil {
		log.Fatal(err)
	}
	for _, q := range []string{"order AVG amount", `COUNT supplier "Indian black chocolate"`} {
		fmt.Printf("== %s\n", q)
		na, err := norm.Answer(q, 1)
		if err != nil {
			log.Fatal(err)
		}
		da, err := denorm.Answer(q, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("semantic, normalized TPCH:    %v\n", na[0].Result.Rows)
		fmt.Printf("semantic, unnormalized TPCH': %v  <- identical\n", da[0].Result.Rows)
		fmt.Printf("  (generated over Ordering: %s)\n", da[0].SQL)
		if res, _, err := denorm.SQAKAnswer(q); err == nil {
			fmt.Printf("SQAK, unnormalized TPCH':     %v  <- inflated by duplicates\n", res.Rows)
		}
		fmt.Println()
	}
}
