// Command quickstart shows the minimal end-to-end use of the kwagg public
// API: declare a schema, load rows, open an engine, and ask keyword queries
// involving aggregates and GROUPBY.
//
// It builds the paper's running-example university database by hand and
// runs the introduction's queries Q1 and Q2, printing the ranked
// interpretations, the generated SQL, and the answers — including the
// per-object grouping and relationship de-duplication that distinguish the
// semantic approach from SQAK.
package main

import (
	"fmt"
	"log"

	"kwagg"
)

func main() {
	db := kwagg.NewDB("university")
	db.MustCreateTable(kwagg.TableSpec{
		Name:       "Student",
		Columns:    []kwagg.Column{"Sid", "Sname", "Age INT"},
		PrimaryKey: []string{"Sid"},
	})
	db.MustCreateTable(kwagg.TableSpec{
		Name:       "Course",
		Columns:    []kwagg.Column{"Code", "Title", "Credit FLOAT"},
		PrimaryKey: []string{"Code"},
	})
	db.MustCreateTable(kwagg.TableSpec{
		Name:       "Enrol",
		Columns:    []kwagg.Column{"Sid", "Code", "Grade"},
		PrimaryKey: []string{"Sid", "Code"},
		ForeignKeys: []kwagg.FK{
			{Attrs: []string{"Sid"}, RefTable: "Student"},
			{Attrs: []string{"Code"}, RefTable: "Course"},
		},
	})

	for _, row := range [][]string{
		{"s1", "George", "22"}, {"s2", "Green", "24"}, {"s3", "Green", "21"},
	} {
		db.MustInsert("Student", row...)
	}
	for _, row := range [][]string{
		{"c1", "Java", "5.0"}, {"c2", "Database", "4.0"}, {"c3", "Multimedia", "3.0"},
	} {
		db.MustInsert("Course", row...)
	}
	for _, row := range [][]string{
		{"s1", "c1", "A"}, {"s1", "c2", "B"}, {"s1", "c3", "B"},
		{"s2", "c1", "A"}, {"s3", "c1", "A"}, {"s3", "c3", "B"},
	} {
		db.MustInsert("Enrol", row...)
	}

	eng, err := kwagg.Open(db, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("ORM schema graph:")
	fmt.Println(eng.SchemaGraph())

	for _, q := range []string{
		"Green SUM Credit",                 // Q1: total credits per student named Green
		"COUNT Student GROUPBY Course",     // students per course
		"AVG COUNT Student GROUPBY Course", // nested: average class size
	} {
		fmt.Printf("== query: %s\n", q)
		answers, err := eng.Answer(q, 2)
		if err != nil {
			log.Fatal(err)
		}
		for i, a := range answers {
			fmt.Printf("-- interpretation #%d: %s\n%s\n%s\n", i+1, a.Description, a.PrettySQL, a.Result)
		}
	}

	// The same query through the SQAK baseline merges both Greens into one
	// (incorrect) total of 13.
	res, sql, err := eng.SQAKAnswer("Green SUM Credit")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== SQAK baseline for comparison:\n%s\n%s\n", sql, res)
}
