// Command relatedwork contrasts the paper's semantic approach with the
// closest related work it cites ([17], Zhou & Pei EDBT 2009): aggregate
// keyword search by minimal group-bys over a universal relation.
//
// Minimal group-bys answer "where do these keywords co-occur?" with COUNT(*)
// over tuple groups. They have no notion of object identity, so the two
// students named Green collapse into one Sname=Green group — exactly the
// merge the paper's query Q1 is designed to avoid. The semantic engine, on
// the same data, returns one SUM per distinct student.
package main

import (
	"fmt"
	"log"

	"kwagg"
	"kwagg/internal/aggcell"
	"kwagg/internal/dataset/university"
)

func main() {
	fmt.Println("### Minimal group-bys (Zhou & Pei, EDBT 2009) on the Enrolment relation")
	table := university.NewEnrolment().Table("Enrolment")
	searcher := aggcell.New(table, "Sname", "Title", "Grade")

	for _, kws := range [][]string{{"Green"}, {"Green", "Java"}} {
		fmt.Printf("keywords %v -> minimal aggregate cells:\n", kws)
		for _, c := range searcher.Search(kws...) {
			fmt.Printf("  %s  COUNT(*) = %d\n", c, c.Count())
		}
	}
	coarse := aggcell.New(table, "Sname")
	fmt.Println("grouping only by Sname:")
	for _, c := range coarse.Search("Green") {
		fmt.Printf("  %s  <- both Greens merged, no object identity\n", c)
	}

	fmt.Println()
	fmt.Println("### The semantic approach on the same database")
	eng, err := kwagg.Open(kwagg.UniversityEnrolmentDB(),
		&kwagg.Options{ViewNames: kwagg.UniversityEnrolmentViewNames()})
	if err != nil {
		log.Fatal(err)
	}
	answers, err := eng.Answer("Green SUM Credit", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(answers[0].Description)
	fmt.Println(answers[0].Result) // one credit total per distinct student
}
