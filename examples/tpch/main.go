// Command tpch runs the paper's TPCH workload (Table 3, queries T1-T8)
// against the generated TPC-H-like database, comparing the semantic
// approach with the SQAK baseline query by query — the content of the
// paper's Table 5.
//
// Watch for three effects: T3/T4 return one aggregate per matching part
// while SQAK merges all same-named parts; T5/T6 de-duplicate the
// (part, supplier) pairs of the Lineitem relationship while SQAK counts a
// supplier once per order; T7/T8 are answered by the semantic approach but
// rejected by SQAK (two aggregates; self joins).
package main

import (
	"fmt"
	"log"
	"strings"

	"kwagg"
)

var queries = []struct{ id, q, want string }{
	{"T1", "order AVG amount", "average amount of orders"},
	{"T2", "MAX COUNT order GROUPBY nation", "maximum number of orders among nations"},
	{"T3", `COUNT order "royal olive"`, "number of orders per royal olive part"},
	{"T4", `supplier MAX acctbal "yellow tomato"`, "max supplier balance per yellow tomato part"},
	{"T5", `COUNT supplier "Indian black chocolate"`, "suppliers of indian black chocolate"},
	{"T6", "COUNT part GROUPBY supplier", "parts per supplier"},
	{"T7", "COUNT order SUM amount GROUPBY mktsegment", "orders and total amount per market segment"},
	{"T8", `COUNT supplier "pink rose" "white rose"`, "suppliers of both a pink and a white rose"},
}

func main() {
	eng, err := kwagg.Open(kwagg.TPCHDB(kwagg.TPCHDefault), nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, q := range queries {
		fmt.Printf("== %s  %-50s (%s)\n", q.id, q.q, q.want)

		answers, err := eng.Answer(q.q, 1)
		if err != nil {
			log.Fatalf("%s: %v", q.id, err)
		}
		a := answers[0]
		fmt.Printf("semantic: %s\n          %d answer row(s): %s\n",
			a.SQL, len(a.Result.Rows), preview(a.Result, 5))

		res, sql, err := eng.SQAKAnswer(q.q)
		if err != nil {
			fmt.Printf("SQAK:     N.A. (%v)\n\n", err)
			continue
		}
		fmt.Printf("SQAK:     %s\n          %d answer row(s): %s\n\n",
			sql, len(res.Rows), preview(res, 5))
	}
}

func preview(r kwagg.Result, n int) string {
	var parts []string
	for i, row := range r.Rows {
		if i >= n {
			parts = append(parts, "...")
			break
		}
		parts = append(parts, "("+strings.Join(row, ", ")+")")
	}
	return strings.Join(parts, " ")
}
