// Command acmdl demonstrates GROUPBY terms and nested aggregates on the
// synthetic publication database (the paper's ACMDL workload, Table 4).
//
// It walks through: a plain aggregate (A1), grouping by an object (A2),
// per-object disambiguation of the 61 editors named Smith (A3), a query
// with two aggregate functions (A6), self joins for co-authorship (A7), and
// a nested aggregate in the style of the paper's Example 7.
package main

import (
	"fmt"
	"log"
	"strings"

	"kwagg"
)

func main() {
	eng, err := kwagg.Open(kwagg.ACMDLDB(kwagg.ACMDLDefault), nil)
	if err != nil {
		log.Fatal(err)
	}

	show := func(id, q string, k int) {
		fmt.Printf("== %s  %s\n", id, q)
		answers, err := eng.Answer(q, k)
		if err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		for i, a := range answers {
			fmt.Printf("-- #%d %s\n   %s\n   %d row(s): %s\n",
				i+1, a.Description, a.SQL, len(a.Result.Rows), preview(a.Result, 4))
		}
		fmt.Println()
	}

	show("A1", "proceeding AVG pages", 1)
	show("A2", "COUNT paper GROUPBY proceeding SIGMOD", 1)
	show("A3", "COUNT proceeding editor Smith", 2) // per-Smith vs merged
	show("A6", "COUNT paper MAX date IEEE", 1)     // two aggregates at once
	show("A7", "COUNT paper author John Mary", 1)  // self joins of Author
	// Nested aggregate in the style of Example 7: the average number of
	// papers per SIGMOD proceeding.
	show("EX7", "AVG COUNT paper GROUPBY proceeding SIGMOD", 1)

	// SQAK cannot express A6/A7 at all.
	for _, q := range []string{"COUNT paper MAX date IEEE", "COUNT paper author John Mary"} {
		if _, err := eng.SQAKTranslate(q); err != nil {
			fmt.Printf("SQAK on %q: %v\n", q, err)
		}
	}
}

func preview(r kwagg.Result, n int) string {
	var parts []string
	for i, row := range r.Rows {
		if i >= n {
			parts = append(parts, "...")
			break
		}
		parts = append(parts, "("+strings.Join(row, ", ")+")")
	}
	return strings.Join(parts, " ")
}
